"""The headline invariant, property-tested.

For *any* synthetic workload shape and *any* fault schedule — checker- or
main-targeted, any rate, any seed — a ParaMedic or ParaDox run must end
with exactly the golden run's memory, program output and architectural
result.  This is the paper's correctness argument ("the correctness of
the system comes from the principle of strong induction", section II-B)
made executable.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ParaDoxSystem, ParaMedicSystem
from repro.faults import (
    FaultInjector,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
)
from repro.isa import FunctionalUnit
from repro.workloads import WorkloadProfile, build_synthetic, golden_run

PROFILES = st.builds(
    WorkloadProfile,
    name=st.just("prop"),
    alu=st.floats(min_value=1.0, max_value=8.0),
    mul=st.floats(min_value=0.0, max_value=1.0),
    div=st.floats(min_value=0.0, max_value=0.2),
    fp_alu=st.floats(min_value=0.0, max_value=4.0),
    fp_mul=st.floats(min_value=0.0, max_value=2.0),
    load=st.floats(min_value=0.5, max_value=4.0),
    store=st.floats(min_value=0.5, max_value=3.0),
    random_branch=st.floats(min_value=0.0, max_value=0.2),
    working_set_kib=st.sampled_from([32, 128, 512]),
    sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    conflict_store_fraction=st.floats(min_value=0.0, max_value=0.5),
    code_blocks=st.integers(min_value=1, max_value=6),
    block_ops=st.integers(min_value=8, max_value=32),
)

COMMON_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def checker_injector(rate, seed):
    rng = np.random.default_rng(seed)
    return FaultInjector(
        [
            RegisterFaultModel(rate, rng),
            FunctionalUnitFaultModel(rate, rng, FunctionalUnit.INT_MUL),
            MemoryFaultModel(rate, rng, target="load"),
        ],
        target="checker",
    )


def main_injector(rate, seed):
    rng = np.random.default_rng(seed)
    return FaultInjector(
        [
            RegisterFaultModel(rate, rng),
            FunctionalUnitFaultModel(rate, rng, FunctionalUnit.INT_ALU),
        ],
        target="main",
    )


class TestGoldenEquivalenceProperty:
    @COMMON_SETTINGS
    @given(
        profile=PROFILES,
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.sampled_from([0.0, 1e-4, 1e-3]),
    )
    def test_paradox_checker_faults(self, profile, seed, rate):
        workload = build_synthetic(profile, iterations=4, seed=seed % 1000)
        golden = golden_run(workload)
        engine = ParaDoxSystem().engine(
            workload, seed=seed, injector=checker_injector(rate, seed)
        )
        engine.options.livelock_factor = 32
        result = engine.run(workload.max_instructions)
        if result.livelocked:
            return  # truncated runs make no equivalence promise
        assert engine.memory == golden.memory
        assert result.program_output == golden.output
        assert result.instructions == golden.instructions

    @COMMON_SETTINGS
    @given(
        profile=PROFILES,
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.sampled_from([1e-4, 1e-3]),
    )
    def test_paradox_main_faults(self, profile, seed, rate):
        workload = build_synthetic(profile, iterations=4, seed=seed % 1000)
        golden = golden_run(workload)
        engine = ParaDoxSystem().engine(
            workload, seed=seed, injector=main_injector(rate, seed)
        )
        engine.options.livelock_factor = 32
        result = engine.run(workload.max_instructions)
        if result.livelocked:
            return
        assert engine.memory == golden.memory
        assert result.program_output == golden.output

    @COMMON_SETTINGS
    @given(
        profile=PROFILES,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_paramedic_checker_faults(self, profile, seed):
        workload = build_synthetic(profile, iterations=4, seed=seed % 1000)
        golden = golden_run(workload)
        engine = ParaMedicSystem().engine(
            workload, seed=seed, injector=checker_injector(5e-4, seed)
        )
        engine.options.livelock_factor = 32
        result = engine.run(workload.max_instructions)
        if result.livelocked:
            return
        assert engine.memory == golden.memory
        assert result.program_output == golden.output


class TestWallClockSanityProperty:
    @COMMON_SETTINGS
    @given(
        profile=PROFILES,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_time_is_monotone_and_positive(self, profile, seed):
        workload = build_synthetic(profile, iterations=3, seed=seed % 1000)
        result = ParaDoxSystem().run(workload, seed=seed)
        assert result.wall_ns > 0
        assert result.instructions > 0
        assert result.stalls.total_ns >= 0
        assert result.stalls.total_ns < result.wall_ns


@pytest.mark.parametrize("rate", [2e-3, 5e-3])
@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_stress_high_rate_recovery(rate, seed):
    """Dense-error stress: many overlapping recoveries, still bit-exact."""
    profile = WorkloadProfile(
        name="stress", alu=4, load=2, store=2, code_blocks=2, block_ops=16,
        working_set_kib=64, sequential_fraction=0.5,
    )
    workload = build_synthetic(profile, iterations=8, seed=seed)
    golden = golden_run(workload)
    engine = ParaDoxSystem().engine(
        workload, seed=seed, injector=checker_injector(rate, seed)
    )
    engine.options.livelock_factor = 48
    result = engine.run(workload.max_instructions)
    if not result.livelocked:
        assert engine.memory == golden.memory
        assert result.program_output == golden.output
