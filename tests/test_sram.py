"""SRAM bit-cell fault maps: generation, thresholding, fast-path veto,
engine integration, and seeded determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    GENERATION_MODES,
    SramFaultModel,
    SramMapConfig,
    SramStructure,
    StuckAtFaultModel,
    default_injector,
    generate_chip_map,
    sram_injector,
)
from repro.isa import FunctionalUnit
from repro.isa.state import ArchState as State
from repro.lslog import LogSegment, RollbackGranularity
from repro.resilience.campaign import execute_run

#: Dense, weak-map config so small segments reliably intersect cells.
DENSE = SramMapConfig(weak_cell_rate=3e-3)


def make_segment(instructions=100, loads=10, stores=5, addr_stride=8):
    segment = LogSegment(
        seq=1,
        granularity=RollbackGranularity.LINE,
        capacity_bytes=1 << 20,
        start_state=State(),
    )
    for _ in range(instructions):
        segment.record_instruction(FunctionalUnit.INT_ALU, writes_register=True)
    for i in range(loads):
        segment.record_load(i * addr_stride, 0)
    for i in range(stores):
        segment.record_store(i * addr_stride, 1, 0)
    return segment


class TestMapGeneration:
    def test_same_chip_seed_identical_map(self):
        assert generate_chip_map(7).structures == generate_chip_map(7).structures

    def test_different_chip_seeds_differ(self):
        a, b = generate_chip_map(1), generate_chip_map(2)
        assert a.structures != b.structures

    def test_covers_all_three_structures(self):
        chip = generate_chip_map(3, checkers=4)
        structures = {s for s, _ in chip.structures}
        assert structures == set(SramStructure)
        # Per-checker structures have one instance per checker; the
        # cache data array is shared.
        assert len(chip.instances(SramStructure.CHECKER_REGFILE)) == 4
        assert len(chip.instances(SramStructure.LOAD_STORE_LOG)) == 4
        assert len(chip.instances(SramStructure.CACHE_DATA)) == 1

    def test_mors_mode_clusters_along_rows_or_columns(self):
        chip = generate_chip_map(5, config=DENSE)
        by_cluster = {}
        for (structure, instance), smap in chip.structures.items():
            for cell in smap.cells:
                if cell.cluster:
                    key = (structure, instance, cell.cluster)
                    by_cluster.setdefault(key, []).append(cell)
        assert by_cluster, "mors mode must produce clustered cells"
        multi = [cells for cells in by_cluster.values() if len(cells) > 1]
        assert multi, "at least one cluster should span several cells"
        for cells in multi:
            rows = {c.row for c in cells}
            cols = {c.col for c in cells}
            assert len(rows) == 1 or len(cols) == 1

    def test_uniform_mode_has_no_clusters(self):
        chip = generate_chip_map(5, mode="uniform", config=DENSE)
        assert all(
            cell.cluster == 0
            for smap in chip.structures.values()
            for cell in smap.cells
        )

    def test_vmin_capped_below_nominal(self):
        chip = generate_chip_map(11, config=DENSE)
        cap = DENSE.vmin_cap
        assert all(
            cell.vmin <= cap
            for smap in chip.structures.values()
            for cell in smap.cells
        )
        # Manufacturer screening: every chip is clean at nominal supply.
        assert chip.failing_count(1.1) == 0

    def test_failing_count_monotone_in_voltage(self):
        chip = generate_chip_map(9, config=DENSE)
        counts = [chip.failing_count(v) for v in (0.85, 0.92, 0.97, 1.02, 1.1)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == chip.total_cells  # far below every Vmin
        assert counts[-1] == 0

    def test_invalid_mode_and_seed_rejected(self):
        with pytest.raises(ValueError):
            generate_chip_map(1, mode="banana")
        with pytest.raises(ValueError):
            generate_chip_map(-1)

    def test_modes_exported(self):
        assert set(GENERATION_MODES) == {"mors", "uniform"}


class TestModelThresholding:
    def make_model(self, structure, voltage=1.1, seed=5):
        chip = generate_chip_map(seed, checkers=4, config=DENSE)
        return SramFaultModel(chip, structure, voltage=voltage)

    def test_nominal_voltage_no_active_cells(self):
        model = self.make_model(SramStructure.LOAD_STORE_LOG)
        assert model.active_cell_count == 0

    def test_on_voltage_rethresholds_and_reports_change(self):
        model = self.make_model(SramStructure.LOAD_STORE_LOG)
        assert model.on_voltage(0.85) is True
        low = model.active_cell_count
        assert low > 0
        assert model.on_voltage(0.85) is False  # unchanged supply
        assert model.on_voltage(1.1) is True  # cells heal on the way up
        assert model.active_cell_count == 0
        assert model.active_cell_count < low

    def test_set_rate_is_a_noop(self):
        model = self.make_model(SramStructure.CHECKER_REGFILE, voltage=0.85)
        before = model.active_cell_count
        model.set_rate(0.5)
        assert model.rate == 0.0 and model.active_cell_count == before

    def test_persistent_flag_and_enabled(self):
        injector = sram_injector(3, checkers=4, voltage=1.1, config=DENSE)
        assert all(model.persistent for model in injector.models)
        assert injector.enabled
        assert injector.persistent_descriptions()


class TestDeterministicCorruption:
    def test_load_corruption_is_a_pure_function(self):
        """Same chip seed, voltage, and access -> same corrupted value,
        across independently built models (i.e. across processes)."""
        outcomes = []
        for _ in range(2):
            chip = generate_chip_map(5, checkers=4, config=DENSE)
            model = SramFaultModel(
                chip, SramStructure.LOAD_STORE_LOG, voltage=0.85
            )
            model.begin_check(0)
            outcomes.append(
                [model.on_load_at(i, i * 8, 0xDEADBEEF) for i in range(64)]
            )
        assert outcomes[0] == outcomes[1]
        assert any(fired for _, fired in outcomes[0])

    def test_repeated_access_fails_identically(self):
        chip = generate_chip_map(5, checkers=4, config=DENSE)
        model = SramFaultModel(chip, SramStructure.CACHE_DATA, voltage=0.85)
        results = {model.on_load_at(0, 4096, 77) for _ in range(10)}
        assert len(results) == 1  # persistent: no per-access randomness

    def test_instance_routing_follows_begin_check(self):
        chip = generate_chip_map(5, checkers=4, config=DENSE)
        model = SramFaultModel(chip, SramStructure.LOAD_STORE_LOG, voltage=0.85)
        per_checker = []
        for core_id in range(4):
            model.begin_check(core_id)
            per_checker.append(
                tuple(model.on_load_at(i, i * 8, 0) for i in range(64))
            )
        assert len(set(per_checker)) > 1  # each checker has its own map
        model.begin_check(None)  # main core: checker structures inert
        assert all(
            not fired for _, fired in (model.on_load_at(i, i * 8, 0) for i in range(64))
        )


class TestFastPathVeto:
    """Satellite: persistent models must never let the fast path skip a
    segment in which they could fire."""

    @settings(max_examples=40, deadline=None)
    @given(
        chip_seed=st.integers(0, 50),
        loads=st.integers(0, 80),
        stores=st.integers(0, 40),
        voltage=st.sampled_from([0.85, 0.92, 0.96, 1.0, 1.1]),
    )
    def test_sram_never_skips_a_firing_segment(
        self, chip_seed, loads, stores, voltage
    ):
        injector = sram_injector(
            chip_seed, checkers=4, voltage=voltage, config=DENSE
        )
        segment = make_segment(instructions=10, loads=loads, stores=stores)
        injector.begin_check(0, segment)
        if not injector.fires_within_segment(segment):
            # The veto said "cannot fire": replaying every logged
            # operation must corrupt nothing.
            for model in injector.models:
                for i in range(loads):
                    _, fired = model.on_load_at(i, segment.loads[i][0], 0)
                    assert not fired
                for j in range(stores):
                    _, fired = model.on_store_at(j, segment.store_addrs[j], 0)
                    assert not fired
            injector.skip_segment(segment)  # must not raise

    def test_stuckat_never_skipped_when_unit_in_segment(self):
        injector = default_injector(0.0, models=("stuckat",))
        assert isinstance(injector.models[0], StuckAtFaultModel)
        segment = make_segment(instructions=10, loads=0, stores=0)
        injector.begin_check(0, segment)
        assert injector.fires_within_segment(segment)
        # A segment with no register-writing INT_ALU instructions is
        # skippable even for a permanent defect.
        empty = LogSegment(
            seq=2,
            granularity=RollbackGranularity.LINE,
            capacity_bytes=1 << 20,
            start_state=State(),
        )
        empty.record_instruction(FunctionalUnit.LOAD, writes_register=False)
        injector.begin_check(0, empty)
        assert not injector.fires_within_segment(empty)

    def test_clean_structures_keep_the_fast_path(self):
        """At nominal voltage no cell is active, so every segment skips:
        the sram models must not cost the fast path anything."""
        injector = sram_injector(3, checkers=4, voltage=1.1, config=DENSE)
        segment = make_segment()
        injector.begin_check(0, segment)
        assert not injector.fires_within_segment(segment)
        injector.skip_segment(segment)
        assert injector.stats.segments_skipped == 1


class TestEngineIntegration:
    BASE = {
        "run_id": 0,
        "workload": "bitcount",
        "scale": 0.2,
        "seed": 1,
        "rate": 1e-4,
        "model": "sram",
        "dvs": True,
        "initial_margin": 0.15,
        "chip_seed": 0,
    }

    def test_undervolted_run_detects_and_recovers(self):
        result = execute_run(dict(self.BASE))
        assert result["status"] == "ok"
        assert result["outcome"] in (
            "completed",
            "livelock",
            "forward_progress_failure",
        )
        if result["outcome"] == "completed":
            assert result["matches_golden"]

    def test_same_chip_seed_identical_results(self):
        a = execute_run(dict(self.BASE))
        b = execute_run(dict(self.BASE))
        for key in (
            "outcome",
            "matches_golden",
            "recoveries",
            "faults_injected",
            "instructions",
        ):
            assert a[key] == b[key]

    def test_fault_free_at_nominal_voltage(self):
        """The diffcheck gate in test form: an sram run with the supply
        pinned at the safe point injects nothing and stays bit-identical
        to the golden (reference) run."""
        result = execute_run({**self.BASE, "dvs": False, "voltage": 1.1})
        assert result["outcome"] == "completed"
        assert result["matches_golden"]
        assert result["faults_injected"] == 0
        assert result["recoveries"] == 0

    def test_voltage_change_rethresholds_via_telemetry(self):
        result = execute_run({**self.BASE, "tracing": True})
        kinds = {event.get("kind") for event in result["trace"] or []}
        assert "sram_map" in kinds  # the DVS loop re-thresholded the map
