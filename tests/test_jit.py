"""Compiled superblock tier: discovery, bit-identity, invalidation.

The contract under test: running any workload through the tier
(``golden_run(jit=True)``, ``EngineOptions.jit``, or the oracle's
``use_jit``) is *bit-identical* to pure interpretation — same final
architectural state, same retired-instruction count, same timing, same
telemetry-visible bookkeeping.  The cache invalidation protocol (DVFS
voltage moves drop bound blocks, segment turnover rebinds the recorder)
and the structural exclusion of fault-injection points (no tier exists
under a main-core injector) are pinned explicitly.
"""

from __future__ import annotations

import signal
import time
import types
import warnings

import pytest

from repro.core import ParaDoxSystem
from repro.faults.injector import default_injector
from repro.isa import ArchState, MemoryImage, Opcode, assemble
from repro.isa.instructions import BRANCH_OPCODES
from repro.jit import (
    COMPILABLE_OPCODES,
    MAX_BLOCK,
    MIN_BLOCK,
    SuperblockJit,
    superblock_length,
)
from repro.oracle.fuzzer import PROFILES, build_workload, generate_case, run_case
from repro.parallel import run_fanout
from repro.workloads import Workload, build_spec_workload, golden_run

# ---------------------------------------------------------------------------
# discovery


class TestSuperblockDiscovery:
    def test_branches_halt_syscall_are_not_compilable(self):
        assert not (COMPILABLE_OPCODES & set(BRANCH_OPCODES))
        assert Opcode.HALT not in COMPILABLE_OPCODES
        assert Opcode.SYSCALL not in COMPILABLE_OPCODES

    def test_out_of_range_pc(self):
        program = assemble("movi x1, 1\nmovi x2, 2\nmovi x3, 3\nhalt")
        assert superblock_length(program.instructions, -1) == 0
        assert superblock_length(program.instructions, 99) == 0

    def test_entry_on_branch_is_not_a_block(self):
        program = assemble("loop:\nmovi x1, 1\nmovi x2, 2\nmovi x3, 3\nb loop")
        assert superblock_length(program.instructions, 3) == 0

    def test_short_runs_stay_interpreted(self):
        program = assemble("movi x1, 1\nmovi x2, 2\nhalt")
        assert superblock_length(program.instructions, 0) == 0
        assert MIN_BLOCK == 3

    def test_region_stops_before_terminator(self):
        program = assemble(
            "movi x1, 1\nmovi x2, 2\nadd x3, x1, x2\nsub x4, x3, x1\nhalt"
        )
        assert superblock_length(program.instructions, 0) == 4

    def test_overlapping_entries(self):
        program = assemble(
            "movi x1, 1\nmovi x2, 2\nadd x3, x1, x2\nsub x4, x3, x1\n"
            "mul x5, x4, x2\nhalt"
        )
        assert superblock_length(program.instructions, 0) == 5
        assert superblock_length(program.instructions, 1) == 4
        assert superblock_length(program.instructions, 2) == 3

    def test_length_cap(self):
        source = "\n".join(f"movi x{1 + (i % 5)}, {i}" for i in range(200))
        program = assemble(source + "\nhalt")
        assert superblock_length(program.instructions, 0) == MAX_BLOCK

    def test_fuzz_blocks_never_contain_excluded_opcodes(self):
        for profile in PROFILES:
            program = build_workload(generate_case(11, profile)).program
            for pc in range(len(program.instructions)):
                length = superblock_length(program.instructions, pc)
                for instr in program.instructions[pc : pc + length]:
                    assert instr.opcode in COMPILABLE_OPCODES


# ---------------------------------------------------------------------------
# bit-identity: bare executor


def _assert_golden_identical(workload):
    interp = golden_run(workload)
    jitted = golden_run(workload, jit=True)
    assert jitted.instructions == interp.instructions
    assert jitted.state.regs.x == interp.state.regs.x
    assert jitted.state.regs.f == interp.state.regs.f
    assert jitted.state.regs.flags == interp.state.regs.flags
    assert jitted.state.pc == interp.state.pc
    assert jitted.output == interp.output
    assert jitted.memory.words == interp.memory.words


class TestExecutorIdentity:
    def test_kernel_workload(self, bitcount_small):
        _assert_golden_identical(bitcount_small)

    def test_spec_workload(self):
        _assert_golden_identical(build_spec_workload("bzip2", iterations=3))

    def test_x0_destination_discards_write_but_retires(self):
        program = assemble(
            "movi x1, 7\nmovi x2, 5\nadd x0, x1, x2\nsub x0, x1, x2\n"
            "mul x3, x1, x2\nadd x4, x3, x0\nhalt"
        )
        # The x0-dest instructions sit inside one compiled block.
        assert superblock_length(program.instructions, 0) == 6
        workload = Workload(name="x0", program=program, max_instructions=100)
        _assert_golden_identical(workload)
        golden = golden_run(workload, jit=True)
        assert golden.state.regs.x[0] == 0
        assert golden.instructions == 7

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_every_fuzz_profile(self, profile):
        for seed in (1, 7, 23):
            _assert_golden_identical(
                build_workload(generate_case(seed, profile))
            )


# ---------------------------------------------------------------------------
# bit-identity: full engine


def _result_fingerprint(result):
    return (
        result.wall_ns,
        result.instructions,
        result.instructions_executed,
        result.segments,
        result.outcome,
        result.mean_voltage,
        result.faults_injected,
        result.program_output,
        result.unit_mix,
        result.mean_checkpoint_length,
        result.final_checkpoint_target,
        result.voltage_trace,
        len(result.recoveries),
    )


class TestEngineIdentity:
    def test_error_free_run(self, bitcount_small):
        jitted = ParaDoxSystem().run(bitcount_small, seed=7)
        interp = ParaDoxSystem(jit=False).run(bitcount_small, seed=7)
        assert _result_fingerprint(jitted) == _result_fingerprint(interp)

    def test_dvs_run(self):
        workload = build_spec_workload("milc", iterations=12)
        jitted = ParaDoxSystem(dvs=True).run(workload, seed=3)
        interp = ParaDoxSystem(dvs=True, jit=False).run(workload, seed=3)
        assert jitted.voltage_trace  # DVS actually moved the supply
        assert _result_fingerprint(jitted) == _result_fingerprint(interp)

    def test_checker_fault_run_with_recoveries(self):
        workload = build_spec_workload("milc", iterations=12)
        from repro.config import table1_config

        config = table1_config().with_error_rate(1e-3, seed=3)
        jitted = ParaDoxSystem(config=config).run(workload, seed=3)
        interp = ParaDoxSystem(config=config, jit=False).run(workload, seed=3)
        assert jitted.faults_injected > 0
        assert jitted.recoveries  # rollbacks replayed through both paths
        assert _result_fingerprint(jitted) == _result_fingerprint(interp)


# ---------------------------------------------------------------------------
# oracle gate


class TestOracleEquivalence:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_differential_oracle_passes_with_jit(self, profile):
        report = run_case(generate_case(5, profile), use_jit=True)
        assert report.ok, report.divergence

    def test_escape_hatch_still_interprets(self):
        report = run_case(generate_case(5, "mixed"), use_jit=False)
        assert report.ok


# ---------------------------------------------------------------------------
# cache invalidation protocol


def _bare_tier(workload):
    state = ArchState()
    memory = workload.create_memory()
    return SuperblockJit(workload.program, state, memory), state


class TestInvalidation:
    def test_voltage_move_drops_bound_blocks(self, bitcount_small):
        jit, _state = _bare_tier(bitcount_small)
        pc = next(
            pc
            for pc in range(len(bitcount_small.program.instructions))
            if superblock_length(bitcount_small.program.instructions, pc)
        )
        assert jit.runner(pc) is not None
        assert jit._active
        jit.note_voltage(1.0)  # first call: baseline, no invalidation
        assert jit._active and jit.stats.voltage_invalidations == 0
        jit.note_voltage(1.0)  # same voltage: no-op
        assert jit._active and jit.stats.voltage_invalidations == 0
        jit.note_voltage(0.9)  # an actual move
        assert not jit._active
        assert jit.stats.voltage_invalidations == 1
        # Re-activation rebinds from the compile cache, no recompile.
        compiled_before = jit.stats.blocks_compiled
        assert jit.runner(pc) is not None
        assert jit.stats.blocks_compiled == compiled_before

    def test_segment_turnover_rebinds_recorder(self, bitcount_small):
        jit, _state = _bare_tier(bitcount_small)
        recorder = lambda *a, **k: None  # noqa: E731
        jit.note_segment(types.SimpleNamespace(record_instruction=recorder))
        assert jit._rec is recorder
        assert jit.stats.segment_rebinds == 1

    def test_engine_counts_dvfs_invalidations(self):
        workload = build_spec_workload("milc", iterations=12)
        system = ParaDoxSystem(dvs=True)
        engine = system.engine(workload, seed=5)
        engine.run(workload.max_instructions)
        assert engine.jit is not None
        stats = engine.jit.stats
        assert stats.dispatches > 0 and stats.instructions > 0
        assert stats.segment_rebinds > 0
        assert stats.voltage_invalidations > 0  # DVS moved the supply


# ---------------------------------------------------------------------------
# fault-injection points are structurally outside the tier


class TestInjectionGating:
    def test_main_core_injector_disables_tier(self, bitcount_small):
        injector = default_injector(1e-4, seed=1, target="main")
        engine = ParaDoxSystem().engine(bitcount_small, injector=injector)
        engine.run(bitcount_small.max_instructions)
        assert engine.jit is None

    def test_checker_injector_keeps_tier(self, bitcount_small):
        injector = default_injector(1e-4, seed=1, target="checker")
        engine = ParaDoxSystem().engine(bitcount_small, injector=injector)
        engine.run(bitcount_small.max_instructions)
        assert engine.jit is not None

    def test_options_flag_disables_tier(self, bitcount_small):
        engine = ParaDoxSystem(jit=False).engine(bitcount_small)
        engine.run(bitcount_small.max_instructions)
        assert engine.jit is None


# ---------------------------------------------------------------------------
# CLI surface


class TestCliFlags:
    def test_jit_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["run", "bitcount"]).jit is True
        assert parser.parse_args(["run", "bitcount", "--no-jit"]).jit is False
        assert parser.parse_args(["suite", "--no-jit"]).jit is False
        assert parser.parse_args(["trace", "bitcount", "--jit"]).jit is True
        assert parser.parse_args(["diffcheck", "crc32", "--no-jit"]).no_jit
        assert parser.parse_args(["fuzz", "--no-jit"]).no_jit

    def test_legacy_timeout_warns_and_routes_through(self):
        from repro.cli import build_parser, resolve_run_timeout

        parser = build_parser()
        args = parser.parse_args(["campaign", "--timeout", "5"])
        with pytest.warns(DeprecationWarning, match="--run-timeout"):
            assert resolve_run_timeout(args) == 5.0

    def test_run_timeout_takes_precedence_silently(self):
        from repro.cli import build_parser, resolve_run_timeout

        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--run-timeout", "7", "--timeout", "5"]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_run_timeout(args) == 7.0
        args = parser.parse_args(["campaign"])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_run_timeout(args) == 60.0

    def test_campaign_spec_carries_resolved_timeout(self):
        from repro.cli import build_parser, campaign_spec_from_args

        parser = build_parser()
        args = parser.parse_args(["campaign", "--timeout", "9"])
        with pytest.warns(DeprecationWarning):
            spec = campaign_spec_from_args(args)
        assert spec.timeout_s == 9.0


# ---------------------------------------------------------------------------
# fan-out watchdog escalation


def _ignore_sigterm_and_hang(_payload):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


class TestWatchdogEscalation:
    def test_sigterm_immune_worker_is_killed_and_reaped(self):
        outcomes = run_fanout(
            _ignore_sigterm_and_hang, ["x"], jobs=1, timeout_s=0.5
        )
        assert outcomes[0].status == "timeout"
