"""Tournament branch predictor behaviour."""

from repro.config import BranchPredictorConfig
from repro.cores import TournamentPredictor
from repro.isa import Instruction, Opcode

BEQ = Instruction(Opcode.BEQ, target=0)
B = Instruction(Opcode.B, target=0)
JAL = Instruction(Opcode.JAL, rd=30, target=0)
JALR = Instruction(Opcode.JALR, rs1=30)


class TestDirectionPrediction:
    def test_always_taken_loop_learns(self):
        predictor = TournamentPredictor()
        mispredicts = [predictor.access(10, BEQ, True, 5) for _ in range(50)]
        assert not any(mispredicts[10:])  # learnt quickly

    def test_always_not_taken_learns(self):
        predictor = TournamentPredictor()
        mispredicts = [predictor.access(10, BEQ, False, 11) for _ in range(50)]
        assert not any(mispredicts[10:])

    def test_alternating_pattern_learnt_by_history(self):
        predictor = TournamentPredictor()
        outcomes = [bool(i % 2) for i in range(200)]
        mispredicts = [
            predictor.access(10, BEQ, taken, 5 if taken else 11)
            for i, taken in enumerate(outcomes)
        ]
        assert sum(mispredicts[100:]) <= 5  # history-based components learn it

    def test_loop_exit_pattern(self):
        """An 8-iteration loop: exit branch is predictable via local history."""
        predictor = TournamentPredictor()
        mispredicts = 0
        for _trip in range(60):
            for i in range(8):
                taken = i < 7
                mispredicts += predictor.access(20, BEQ, taken, 5 if taken else 21)
        # The last 20 trips should be nearly perfect.
        late = 0
        for _trip in range(20):
            for i in range(8):
                taken = i < 7
                late += predictor.access(20, BEQ, taken, 5 if taken else 21)
        assert late <= 8

    def test_stats_counted(self):
        predictor = TournamentPredictor()
        predictor.access(1, BEQ, True, 5)
        assert predictor.stats.branches == 1


class TestBtb:
    def test_unconditional_branch_target_learnt(self):
        predictor = TournamentPredictor()
        first = predictor.access(30, B, True, 99)
        second = predictor.access(30, B, True, 99)
        assert first  # BTB cold
        assert not second

    def test_target_change_mispredicts(self):
        predictor = TournamentPredictor()
        predictor.access(30, B, True, 99)
        assert predictor.access(30, B, True, 55)  # new target

    def test_taken_conditional_needs_btb(self):
        predictor = TournamentPredictor()
        for _ in range(10):
            predictor.access(40, BEQ, True, 7)
        assert not predictor.access(40, BEQ, True, 7)


class TestRas:
    def test_call_return_pair(self):
        predictor = TournamentPredictor()
        predictor.access(10, JAL, True, 100)  # call: push 11
        assert not predictor.access(150, JALR, True, 11)  # return predicted

    def test_mismatched_return_detected(self):
        predictor = TournamentPredictor()
        predictor.access(10, JAL, True, 100)
        assert predictor.access(150, JALR, True, 999)
        assert predictor.stats.ras_mispredicts == 1

    def test_nested_calls(self):
        predictor = TournamentPredictor()
        predictor.access(10, JAL, True, 100)  # push 11
        predictor.access(100, JAL, True, 200)  # push 101
        assert not predictor.access(250, JALR, True, 101)
        assert not predictor.access(150, JALR, True, 11)

    def test_ras_overflow_drops_oldest(self):
        config = BranchPredictorConfig(ras_entries=2)
        predictor = TournamentPredictor(config)
        for pc in (10, 20, 30):  # three pushes into a 2-entry stack
            predictor.access(pc, JAL, True, 100)
        assert not predictor.access(1, JALR, True, 31)
        assert not predictor.access(2, JALR, True, 21)
        assert predictor.access(3, JALR, True, 11)  # lost to overflow

    def test_empty_ras_mispredicts(self):
        predictor = TournamentPredictor()
        assert predictor.access(5, JALR, True, 42)


class TestReset:
    def test_reset_forgets(self):
        predictor = TournamentPredictor()
        predictor.access(30, B, True, 99)
        predictor.reset()
        assert predictor.stats.branches == 0
        assert predictor.access(30, B, True, 99)  # cold again
