"""Trace exporters: JSONL round-trip, Perfetto structure, cross-worker
merging and the jobs-width determinism guarantee."""

import json

import pytest

from repro.config import table1_config
from repro.core import ParaDoxSystem
from repro.telemetry import (
    SCHEMA_NAME,
    SchemaError,
    events_from_dicts,
    merge_metrics,
    merge_traces,
    read_jsonl_path,
    to_perfetto,
    validate_jsonl_path,
    write_jsonl_path,
)


@pytest.fixture(scope="module")
def traced_run(bitcount_small):
    config = table1_config().with_error_rate(1e-3, seed=3)
    system = ParaDoxSystem(config=config, dvs=True, tracing=True)
    return system.run(bitcount_small, seed=3)


class TestJsonl:
    def test_round_trip(self, traced_run, tmp_path):
        events = events_from_dicts(traced_run.trace)
        path = str(tmp_path / "run.jsonl")
        written = write_jsonl_path(path, events, meta={"seed": 3})
        meta, loaded = read_jsonl_path(path)
        assert written == len(events) == len(loaded)
        assert meta == {"seed": 3}
        assert [e.to_dict() for e in loaded] == traced_run.trace
        assert validate_jsonl_path(path) == len(events)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0.0, "src": "engine", "kind": "commit"}\n')
        with pytest.raises(SchemaError):
            read_jsonl_path(str(path))

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"schema": SCHEMA_NAME, "version": 999}) + "\n")
        with pytest.raises(SchemaError):
            read_jsonl_path(str(path))

    def test_rejects_malformed_event_with_line_number(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        header = json.dumps({"schema": SCHEMA_NAME, "version": 1, "meta": {}})
        path.write_text(header + "\n" + '{"src": "engine"}\n')
        with pytest.raises(SchemaError, match="line 2"):
            read_jsonl_path(str(path))


class TestPerfetto:
    @pytest.fixture(scope="class")
    def document(self, traced_run):
        return to_perfetto(events_from_dicts(traced_run.trace), label="test-run")

    def test_document_shape(self, document):
        assert document["otherData"]["schema"] == SCHEMA_NAME
        assert isinstance(document["traceEvents"], list)
        assert json.loads(json.dumps(document)) == document  # serializable

    def test_main_and_checker_threads_named(self, document):
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event.get("name") == "thread_name"
        }
        assert "main core" in names
        assert any(name.startswith("checker ") for name in names)

    def test_segments_become_slices(self, document, traced_run):
        main_slices = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X" and event["tid"] == 0
        ]
        assert len(main_slices) == traced_run.segments
        assert all(event["dur"] >= 0 for event in main_slices)
        checker_slices = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X" and event["tid"] >= 100
        ]
        assert len(checker_slices) == traced_run.segments

    def test_voltage_counter_track(self, document):
        counters = {
            event["name"]
            for event in document["traceEvents"]
            if event.get("ph") == "C"
        }
        assert "voltage (V)" in counters
        assert "checkpoint target (instrs)" in counters

    def test_detections_become_instants(self, document, traced_run):
        instants = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "i" and event["name"].startswith("detect")
        ]
        assert len(instants) == traced_run.errors_detected

    def test_merge_traces_assigns_one_pid_per_run(self, traced_run):
        events = events_from_dicts(traced_run.trace)
        merged = merge_traces([("first", events), ("second", events)])
        assert merged["otherData"]["runs"] == 2
        assert {event["pid"] for event in merged["traceEvents"]} == {1, 2}


class TestCrossWorkerDeterminism:
    @pytest.fixture(scope="class")
    def suites(self):
        from repro.experiments.spec_runs import run_spec_suite

        kwargs = dict(
            iterations=3,
            names=["bzip2"],
            systems=("baseline", "paradox"),
            tracing=True,
        )
        serial = run_spec_suite(jobs=1, **kwargs)
        parallel = run_spec_suite(jobs=4, **kwargs)
        return serial, parallel

    def test_traces_identical_across_jobs_widths(self, suites):
        serial, parallel = suites
        for system in ("baseline", "paradox"):
            left = serial.by_system(system)["bzip2"]
            right = parallel.by_system(system)["bzip2"]
            assert left.trace == right.trace
            assert left.metrics == right.metrics

    def test_suite_merges_into_one_report(self, suites):
        serial, _ = suites
        merged = serial.merged_metrics()
        assert merged["merged_runs"] == 2
        assert merged["skipped_runs"] == 0
        per_run = [
            result.metrics["counters"]["engine.instructions"]
            for _, _, result in serial.all_results()
        ]
        assert merged["counters"]["engine.instructions"] == sum(per_run)


class TestCampaignTelemetry:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.resilience import CampaignSpec, run_campaign

        spec = CampaignSpec(
            workload="bitcount",
            scale=0.25,
            seeds=4,
            rates=(1e-4,),
            timeout_s=60.0,
            workers=4,
            tracing=True,
        )
        return run_campaign(spec)

    def test_workers_ship_telemetry_through_the_pipe(self, report):
        shipped = [r for r in report.records if r.metrics is not None]
        assert len(shipped) == len(report.records) == 4

    def test_merged_metrics_covers_every_run(self, report):
        merged = report.merged_metrics()
        assert merged["merged_runs"] == 4
        assert merged["skipped_runs"] == 0

    def test_merged_trace_is_one_artifact(self, report):
        merged = report.merged_trace()
        pids = {event["pid"] for event in merged["traceEvents"]}
        assert pids == {1, 2, 3, 4}

    def test_report_json_stays_lean(self, report):
        # The raw event stream is exported separately; the classified
        # report must not inline it.
        data = report.to_dict()
        assert all("trace" not in record for record in data["records"])
