"""Campaign runner: classification, crash isolation, watchdog, report."""

import json

import pytest

from repro.cli import build_parser, campaign_spec_from_args
from repro.resilience import CampaignSpec, RunClass, run_campaign, smoke_spec
from repro.resilience.campaign import classify_result, execute_run


def ok_message(**overrides):
    message = {
        "status": "ok",
        "outcome": "completed",
        "matches_golden": True,
        "recoveries": 0,
        "faults_injected": 0,
        "instructions": 1000,
        "quarantined": [],
        "escalations": {},
        "failure": None,
        "duration_s": 0.1,
    }
    message.update(overrides)
    return message


class TestClassification:
    def test_masked(self):
        cls, _ = classify_result(ok_message(faults_injected=3))
        assert cls is RunClass.MASKED

    def test_detected_recovered(self):
        cls, _ = classify_result(ok_message(recoveries=2, faults_injected=2))
        assert cls is RunClass.DETECTED_RECOVERED

    def test_degraded_by_quarantine(self):
        cls, detail = classify_result(ok_message(recoveries=3, quarantined=[4]))
        assert cls is RunClass.DEGRADED
        assert "4" in detail

    def test_degraded_by_escalation(self):
        cls, _ = classify_result(
            ok_message(recoveries=9, escalations={"shrink": 1, "voltage": 2})
        )
        assert cls is RunClass.DEGRADED

    def test_sdc(self):
        cls, _ = classify_result(ok_message(matches_golden=False))
        assert cls is RunClass.SDC

    def test_livelock_and_fpf_are_hangs(self):
        cls, _ = classify_result(ok_message(outcome="livelock"))
        assert cls is RunClass.HANG
        cls, detail = classify_result(
            ok_message(
                outcome="forward_progress_failure", failure="stuck-at bit 3"
            )
        )
        assert cls is RunClass.HANG
        assert "stuck-at" in detail

    def test_sdc_outranks_degraded(self):
        cls, _ = classify_result(
            ok_message(matches_golden=False, quarantined=[1])
        )
        assert cls is RunClass.SDC


class TestSpec:
    def test_expand_cycles_models_over_runs(self):
        spec = CampaignSpec(seeds=4, rates=(1e-4, 1e-3), models=("transient", "burst"))
        payloads = spec.expand()
        assert len(payloads) == 8
        assert [p["model"] for p in payloads[:4]] == [
            "transient", "burst", "transient", "burst",
        ]
        assert [p["run_id"] for p in payloads] == list(range(8))

    def test_expand_rejects_unknown_models(self):
        with pytest.raises(ValueError):
            CampaignSpec(models=("cosmic-ray",)).expand()

    def test_smoke_spec_is_small(self):
        spec = smoke_spec()
        assert len(spec.expand()) <= 12

    def test_chip_seed_axis_multiplies_the_grid(self):
        spec = CampaignSpec(
            seeds=2,
            rates=(1e-4,),
            models=("sram",),
            chip_seeds=3,
            first_chip_seed=10,
        )
        payloads = spec.expand()
        assert len(payloads) == 6  # chips x seeds x rates
        assert [p["chip_seed"] for p in payloads] == [10, 10, 11, 11, 12, 12]
        assert all(p["model"] == "sram" for p in payloads)

    def test_default_chip_axis_leaves_grid_unchanged(self):
        payloads = CampaignSpec(seeds=3, rates=(1e-4,)).expand()
        assert len(payloads) == 3
        assert all(p["chip_seed"] == 0 for p in payloads)

    def test_pinned_voltage_reaches_payloads(self):
        spec = CampaignSpec(seeds=1, models=("sram",), voltage=0.97)
        assert spec.expand()[0]["voltage"] == 0.97


class TestExecuteRun:
    def test_single_run_in_process(self):
        result = execute_run(
            {
                "run_id": 0,
                "workload": "bitcount",
                "scale": 0.2,
                "seed": 1,
                "rate": 1e-4,
                "model": "transient",
                "dvs": False,
                "initial_margin": 0.15,
            }
        )
        assert result["status"] == "ok"
        assert result["outcome"] in (
            "completed", "livelock", "forward_progress_failure",
        )


class TestIsolation:
    def test_crash_hang_and_error_workers_are_contained(self):
        spec = CampaignSpec(
            seeds=3,
            scale=0.2,
            models=("transient",),
            workers=3,
            timeout_s=5.0,
            hooks={0: "crash", 1: "error", 2: "hang"},
        )
        report = run_campaign(spec)
        by_id = {r.run_id: r for r in report.records}
        assert len(by_id) == 3
        assert by_id[0].run_class is RunClass.CRASH
        assert "exit code" in by_id[0].detail
        assert by_id[1].run_class is RunClass.CRASH
        assert "campaign error hook" in (by_id[1].traceback or "")
        assert by_id[2].run_class is RunClass.HANG
        assert "watchdog" in by_id[2].detail

    def test_hanging_worker_does_not_stall_other_slots(self):
        """A worker sleeping past timeout_s is terminated and classified
        ``hang`` while the remaining runs keep flowing through the other
        slot: total campaign time stays near one watchdog period, not
        near ``timeout_s`` per queued run."""
        import time

        spec = CampaignSpec(
            seeds=6,
            scale=0.2,
            models=("transient",),
            workers=2,
            timeout_s=6.0,
            hooks={0: "hang"},
        )
        started = time.monotonic()
        order = []
        report = run_campaign(spec, progress=lambda r: order.append(r.run_id))
        elapsed = time.monotonic() - started
        by_id = {r.run_id: r for r in report.records}
        assert len(by_id) == 6
        assert by_id[0].run_class is RunClass.HANG
        assert "watchdog timeout" in by_id[0].detail
        for run_id in range(1, 6):
            assert by_id[run_id].run_class is not RunClass.HANG
            assert by_id[run_id].run_class is not RunClass.CRASH
        # Runs completed while the hung slot was still inside its
        # watchdog window (they classify before run 0 does).
        assert order.index(0) > 0
        # One watchdog period plus the real runs — not 6 serialized
        # timeouts (the generous bound absorbs slow CI machines).
        assert elapsed < 4 * spec.timeout_s


class TestEndToEnd:
    def test_small_campaign_classifies_every_run(self, tmp_path):
        spec = CampaignSpec(
            seeds=4,
            scale=0.2,
            rates=(3e-4,),
            models=("transient", "stuckat"),
            timeout_s=60.0,
            workers=4,
        )
        seen = []
        report = run_campaign(spec, progress=seen.append)
        assert len(report.records) == 4
        assert len(seen) == 4
        assert sum(report.counts.values()) == 4
        assert report.counts[RunClass.CRASH.value] == 0
        # The report round-trips through JSON.
        path = tmp_path / "report.json"
        report.write_json(str(path))
        data = json.loads(path.read_text())
        assert len(data["records"]) == 4
        assert set(data["counts"]) == {cls.value for cls in RunClass}
        assert report.summary_table()


class TestSramCampaign:
    def test_sram_sweep_is_bit_identical_at_any_jobs_width(self):
        """The chip map is regenerated from the chip seed inside each
        worker, so classification, fault counts, and skip accounting
        are identical whether runs execute serially or fanned out."""

        def run_at_width(workers):
            spec = CampaignSpec(
                seeds=2,
                scale=0.2,
                rates=(1e-4,),
                models=("sram",),
                chip_seeds=2,
                timeout_s=60.0,
                workers=workers,
            )
            report = run_campaign(spec)
            return [
                (
                    r.run_id,
                    r.chip_seed,
                    r.run_class,
                    r.outcome,
                    r.recoveries,
                    r.faults_injected,
                    r.instructions,
                )
                for r in report.records
            ]

        serial = run_at_width(1)
        fanned = run_at_width(3)
        assert serial == fanned
        assert len(serial) == 4
        assert all(row[2] is not RunClass.CRASH for row in serial)

    def test_geometric_vs_sram_sweep_end_to_end(self):
        """Acceptance: a fig12/13-style geometric-vs-sram comparison runs
        through the campaign machinery with zero crash-class outcomes."""
        from repro.experiments import ext_sram

        result = ext_sram.run(
            voltages=(1.00, 0.96), seeds=1, chip_seeds=2, jobs=2, scale=0.2
        )
        assert result.crash_count == 0
        assert len(result.points) == 6  # 2 voltages x 3 modes
        assert result.table()
        # At the higher supply the maps are (near-)clean; at the lower
        # one the sram runs see persistent faults the geometric model
        # cannot represent.
        low_sram = [
            p for p in result.points if p.mode == "sram" and p.voltage == 0.96
        ]
        assert low_sram and low_sram[0].runs == 2


class TestCli:
    def test_campaign_parser(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--smoke", "--json", "out.json", "--quiet"]
        )
        assert args.smoke and args.json == "out.json"
        args = parser.parse_args(
            ["campaign", "--seeds", "200", "--rate", "1e-4", "--models", "burst"]
        )
        assert args.seeds == 200 and args.rate == [1e-4]

    def test_campaign_sram_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "campaign",
                "--fault-model",
                "sram",
                "--fault-model",
                "sram-uniform",
                "--chip-seeds",
                "4",
                "--first-chip-seed",
                "7",
                "--voltage",
                "0.96",
            ]
        )
        spec = campaign_spec_from_args(args)
        assert spec.models == ("sram", "sram-uniform")
        assert spec.chip_seeds == 4 and spec.first_chip_seed == 7
        assert spec.voltage == 0.96

    def test_run_timeout_plumbs_to_fanout_timeout(self):
        """--run-timeout becomes the spec's timeout_s, which run_campaign
        hands to run_fanout as the per-run watchdog."""
        parser = build_parser()
        args = parser.parse_args(["campaign", "--run-timeout", "7.5"])
        assert campaign_spec_from_args(args).timeout_s == 7.5
        # The legacy --timeout alias still works when --run-timeout is
        # absent; --run-timeout wins when both are given.
        args = parser.parse_args(["campaign", "--timeout", "33"])
        assert campaign_spec_from_args(args).timeout_s == 33
        args = parser.parse_args(
            ["campaign", "--timeout", "33", "--run-timeout", "5"]
        )
        assert campaign_spec_from_args(args).timeout_s == 5

    def test_run_timeout_lands_hung_run_in_timeout_class(self):
        """End to end: a hung worker under --run-timeout is terminated
        and classified ``hang`` via the fan-out's timeout outcome."""
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--seeds", "1", "--scale", "0.2", "--run-timeout", "3"]
        )
        spec = campaign_spec_from_args(args)
        spec.hooks = {0: "hang"}
        report = run_campaign(spec)
        assert report.records[0].run_class is RunClass.HANG
        assert "watchdog timeout" in report.records[0].detail

    def test_run_resilient_flag(self):
        parser = build_parser()
        args = parser.parse_args(["run", "bitcount", "--resilient"])
        assert args.resilient
