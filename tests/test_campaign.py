"""Campaign runner: classification, crash isolation, watchdog, report."""

import json

import pytest

from repro.cli import build_parser
from repro.resilience import CampaignSpec, RunClass, run_campaign, smoke_spec
from repro.resilience.campaign import classify_result, execute_run


def ok_message(**overrides):
    message = {
        "status": "ok",
        "outcome": "completed",
        "matches_golden": True,
        "recoveries": 0,
        "faults_injected": 0,
        "instructions": 1000,
        "quarantined": [],
        "escalations": {},
        "failure": None,
        "duration_s": 0.1,
    }
    message.update(overrides)
    return message


class TestClassification:
    def test_masked(self):
        cls, _ = classify_result(ok_message(faults_injected=3))
        assert cls is RunClass.MASKED

    def test_detected_recovered(self):
        cls, _ = classify_result(ok_message(recoveries=2, faults_injected=2))
        assert cls is RunClass.DETECTED_RECOVERED

    def test_degraded_by_quarantine(self):
        cls, detail = classify_result(ok_message(recoveries=3, quarantined=[4]))
        assert cls is RunClass.DEGRADED
        assert "4" in detail

    def test_degraded_by_escalation(self):
        cls, _ = classify_result(
            ok_message(recoveries=9, escalations={"shrink": 1, "voltage": 2})
        )
        assert cls is RunClass.DEGRADED

    def test_sdc(self):
        cls, _ = classify_result(ok_message(matches_golden=False))
        assert cls is RunClass.SDC

    def test_livelock_and_fpf_are_hangs(self):
        cls, _ = classify_result(ok_message(outcome="livelock"))
        assert cls is RunClass.HANG
        cls, detail = classify_result(
            ok_message(
                outcome="forward_progress_failure", failure="stuck-at bit 3"
            )
        )
        assert cls is RunClass.HANG
        assert "stuck-at" in detail

    def test_sdc_outranks_degraded(self):
        cls, _ = classify_result(
            ok_message(matches_golden=False, quarantined=[1])
        )
        assert cls is RunClass.SDC


class TestSpec:
    def test_expand_cycles_models_over_runs(self):
        spec = CampaignSpec(seeds=4, rates=(1e-4, 1e-3), models=("transient", "burst"))
        payloads = spec.expand()
        assert len(payloads) == 8
        assert [p["model"] for p in payloads[:4]] == [
            "transient", "burst", "transient", "burst",
        ]
        assert [p["run_id"] for p in payloads] == list(range(8))

    def test_expand_rejects_unknown_models(self):
        with pytest.raises(ValueError):
            CampaignSpec(models=("cosmic-ray",)).expand()

    def test_smoke_spec_is_small(self):
        spec = smoke_spec()
        assert len(spec.expand()) <= 12


class TestExecuteRun:
    def test_single_run_in_process(self):
        result = execute_run(
            {
                "run_id": 0,
                "workload": "bitcount",
                "scale": 0.2,
                "seed": 1,
                "rate": 1e-4,
                "model": "transient",
                "dvs": False,
                "initial_margin": 0.15,
            }
        )
        assert result["status"] == "ok"
        assert result["outcome"] in (
            "completed", "livelock", "forward_progress_failure",
        )


class TestIsolation:
    def test_crash_hang_and_error_workers_are_contained(self):
        spec = CampaignSpec(
            seeds=3,
            scale=0.2,
            models=("transient",),
            workers=3,
            timeout_s=5.0,
            hooks={0: "crash", 1: "error", 2: "hang"},
        )
        report = run_campaign(spec)
        by_id = {r.run_id: r for r in report.records}
        assert len(by_id) == 3
        assert by_id[0].run_class is RunClass.CRASH
        assert "exit code" in by_id[0].detail
        assert by_id[1].run_class is RunClass.CRASH
        assert "campaign error hook" in (by_id[1].traceback or "")
        assert by_id[2].run_class is RunClass.HANG
        assert "watchdog" in by_id[2].detail

    def test_hanging_worker_does_not_stall_other_slots(self):
        """A worker sleeping past timeout_s is terminated and classified
        ``hang`` while the remaining runs keep flowing through the other
        slot: total campaign time stays near one watchdog period, not
        near ``timeout_s`` per queued run."""
        import time

        spec = CampaignSpec(
            seeds=6,
            scale=0.2,
            models=("transient",),
            workers=2,
            timeout_s=6.0,
            hooks={0: "hang"},
        )
        started = time.monotonic()
        order = []
        report = run_campaign(spec, progress=lambda r: order.append(r.run_id))
        elapsed = time.monotonic() - started
        by_id = {r.run_id: r for r in report.records}
        assert len(by_id) == 6
        assert by_id[0].run_class is RunClass.HANG
        assert "watchdog timeout" in by_id[0].detail
        for run_id in range(1, 6):
            assert by_id[run_id].run_class is not RunClass.HANG
            assert by_id[run_id].run_class is not RunClass.CRASH
        # Runs completed while the hung slot was still inside its
        # watchdog window (they classify before run 0 does).
        assert order.index(0) > 0
        # One watchdog period plus the real runs — not 6 serialized
        # timeouts (the generous bound absorbs slow CI machines).
        assert elapsed < 4 * spec.timeout_s


class TestEndToEnd:
    def test_small_campaign_classifies_every_run(self, tmp_path):
        spec = CampaignSpec(
            seeds=4,
            scale=0.2,
            rates=(3e-4,),
            models=("transient", "stuckat"),
            timeout_s=60.0,
            workers=4,
        )
        seen = []
        report = run_campaign(spec, progress=seen.append)
        assert len(report.records) == 4
        assert len(seen) == 4
        assert sum(report.counts.values()) == 4
        assert report.counts[RunClass.CRASH.value] == 0
        # The report round-trips through JSON.
        path = tmp_path / "report.json"
        report.write_json(str(path))
        data = json.loads(path.read_text())
        assert len(data["records"]) == 4
        assert set(data["counts"]) == {cls.value for cls in RunClass}
        assert report.summary_table()


class TestCli:
    def test_campaign_parser(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--smoke", "--json", "out.json", "--quiet"]
        )
        assert args.smoke and args.json == "out.json"
        args = parser.parse_args(
            ["campaign", "--seeds", "200", "--rate", "1e-4", "--models", "burst"]
        )
        assert args.seeds == 200 and args.rate == [1e-4]

    def test_run_resilient_flag(self):
        parser = build_parser()
        args = parser.parse_args(["run", "bitcount", "--resilient"])
        assert args.resilient
