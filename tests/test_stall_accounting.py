"""Regression tests for stall accounting and main-trap edge cases.

Covers two engine bugs fixed together:

* ``_stall_to_wall`` took free-form bucket strings and silently dropped
  time for unknown ones — the end-of-run drain stall (``"drain"``)
  vanished from ``StallBreakdown.total_ns``.  Buckets are now the
  :class:`repro.stats.StallBucket` enum and the accounting is total by
  construction.
* ``_handle_main_trap`` dereferenced ``self._segment.store_count`` with
  no guard; between a segment close and the next open the attribute is
  None and a main-core trap there crashed the simulator instead of
  recovering.
"""

from __future__ import annotations

import pytest

from repro.config import table1_config
from repro.core import ParaDoxSystem
from repro.core.engine import EngineOptions, SimulationEngine
from repro.isa.errors import InvalidPcTrap
from repro.lslog.detection import DetectionChannel
from repro.stats import StallBreakdown, StallBucket
from repro.workloads import build_bitcount


class TestStallBreakdown:
    def test_every_bucket_lands_in_total(self):
        stalls = StallBreakdown()
        for offset, bucket in enumerate(StallBucket):
            stalls.add(bucket, float(offset + 1))
        expected = sum(range(1, len(StallBucket) + 1))
        assert stalls.total_ns == pytest.approx(float(expected))

    def test_named_fields_match_buckets(self):
        stalls = StallBreakdown()
        stalls.add(StallBucket.DRAIN, 7.0)
        stalls.add(StallBucket.CHECKER_WAIT, 3.0)
        assert stalls.drain_ns == 7.0
        assert stalls.checker_wait_ns == 3.0
        assert stalls.total_ns == 10.0

    def test_unknown_bucket_fails_loudly(self):
        stalls = StallBreakdown()
        with pytest.raises(ValueError, match="stall bucket"):
            stalls.add("drain", 1.0)  # a string is not a bucket any more


def _engine(error_rate: float = 0.0, seed: int = 3) -> SimulationEngine:
    workload = build_bitcount(values=40)
    config = table1_config().with_error_rate(error_rate, seed=seed)
    system = ParaDoxSystem(config=config)
    return system.engine(workload, seed=seed)


class TestEngineStallAccounting:
    def test_stall_to_wall_fills_named_buckets(self):
        engine = _engine()
        engine._open_segment(engine.state.snapshot())
        for bucket in StallBucket:
            if bucket is StallBucket.CHECKPOINT:
                continue  # injected via block_commit, not _stall_to_wall
            engine._stall_to_wall(engine.wall_ns + 5.0, bucket)
        stalls = engine.stalls
        assert stalls.checker_wait_ns == pytest.approx(5.0)
        assert stalls.conflict_ns == pytest.approx(5.0)
        assert stalls.rollback_ns == pytest.approx(5.0)
        assert stalls.drain_ns == pytest.approx(5.0)
        assert stalls.total_ns == pytest.approx(20.0)

    def test_drain_stall_is_accounted_under_errors(self):
        # With a heavy error rate some detections resolve during the
        # final drain; that time must appear in the breakdown rather
        # than silently extending wall_ns.
        result = ParaDoxSystem(
            config=table1_config().with_error_rate(2e-3, seed=11)
        ).run(build_bitcount(values=200))
        assert result.errors_detected > 0
        assert result.stalls.total_ns >= result.stalls.drain_ns >= 0.0

    def test_summary_reports_drain(self):
        result = ParaDoxSystem().run(build_bitcount(values=40))
        assert "drain" in result.summary()


class TestMainTrapWithoutSegment:
    def test_trap_between_segments_recovers(self):
        engine = _engine()
        engine._open_segment(engine.state.snapshot())
        # Simulate the close/reopen window: no filling segment exists.
        engine._segment = None
        engine._pending.clear()
        engine._pending_detected = 0
        engine._handle_main_trap(InvalidPcTrap(10_000))
        # Recovery recorded, nothing rolled back, and filling resumed.
        assert engine._segment is not None
        event = engine.recoveries[-1]
        assert event.channel is DetectionChannel.MAIN_TRAP
        assert event.rollback_entries == 0
        assert event.segments_rolled_back == 0
        assert event.rollback_ns == 0.0

    def test_unprotected_trap_still_raises(self):
        workload = build_bitcount(values=40)
        engine = SimulationEngine(
            workload.program,
            table1_config(),
            EngineOptions(checking=False),
        )
        with pytest.raises(RuntimeError, match="unprotected"):
            engine._handle_main_trap(InvalidPcTrap(10_000))
