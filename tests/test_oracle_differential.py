"""The three-way differential runner: clean runs, sensitivity, syscalls.

Includes the ``GET_INSTRET``/output-tagging satellite: a checkpoint
snapshot must carry ``instret`` exactly, or a mid-run segment replay on
a checker tags output differently from the main core and false-detects.
"""

import pytest

from repro.cli import WORKLOAD_BUILDERS
from repro.config import table1_config
from repro.cores.checker_core import CheckerCore
from repro.isa import ArchState, Executor, Opcode, ProgramBuilder, Syscall
from repro.lslog import (
    LogSegment,
    MainMemoryPort,
    RollbackGranularity,
    SegmentCloseReason,
)
from repro.memory import UncheckedLineTracker
from repro.oracle import DifferentialRunner, diff_workload
from repro.telemetry import Tracer
from repro.workloads.base import Workload

GRANULARITIES = list(RollbackGranularity)


def build_syscall_workload(iterations: int = 12) -> Workload:
    """A loop that is dense in syscalls, including GET_INSTRET."""
    b = ProgramBuilder(name="syscall-dense")
    b.movi(29, iterations)
    b.movi(1, 7)
    b.label("loop")
    b.syscall(int(Syscall.GET_INSTRET))  # x1 <- instret (differs per lap)
    b.syscall(int(Syscall.PRINT_INT))  # tagged with pre-increment instret
    b.addi(1, 1, 3)
    b.syscall(int(Syscall.PRINT_INT))
    b.fmovi(1, 2.5)
    b.syscall(int(Syscall.PRINT_FLOAT))
    b.syscall(99)  # unknown syscall: must be a NOP everywhere
    b.subi(29, 29, 1)
    b.cbnz(29, "loop")
    b.halt()
    return Workload(name="syscall-dense", program=b.build(), max_instructions=10_000)


class TestCleanWorkloads:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    @pytest.mark.parametrize("name", ["bitcount", "quicksort"])
    def test_no_divergence(self, name, granularity):
        workload = WORKLOAD_BUILDERS[name](0.3)
        report = diff_workload(workload, granularity=granularity)
        assert report.ok, report.divergence.describe()
        assert report.instructions > 0
        assert report.segments > 0

    def test_short_checkpoint_interval(self):
        # A short interval forces many TARGET_LENGTH boundaries; every
        # one of them is a full three-way comparison.
        workload = WORKLOAD_BUILDERS["stream"](1)
        runner = DifferentialRunner(workload, checkpoint_interval=5)
        report = runner.run(max_instructions=2_000)
        assert report.ok, report.divergence.describe()
        assert report.segments >= 100

    def test_emits_oracle_telemetry(self):
        workload = WORKLOAD_BUILDERS["bitcount"](0.2)
        tracer = Tracer(command="test")
        report = diff_workload(workload, tracer=tracer)
        assert report.ok
        checkpoints = tracer.of_kind("oracle", "checkpoint")
        assert len(checkpoints) == report.checkpoints


class TestDetectorIsNotVacuous:
    def test_semantic_bug_is_reported(self, monkeypatch):
        # Corrupt ADD in every production executor built from here on;
        # the reference ISS is untouched, so the runner must report an
        # executor-stage divergence rather than pass vacuously.
        original = Executor._build_dispatch

        def buggy_build(self):
            original(self)
            real = self._dispatch[Opcode.ADD]
            regs = self.state.regs

            def corrupted(instr):
                info = real(instr)
                if instr.rd != 0:
                    regs.write_x(instr.rd, regs.x[instr.rd] ^ (1 << 17))
                return info

            self._dispatch[Opcode.ADD] = corrupted

        monkeypatch.setattr(Executor, "_build_dispatch", buggy_build)
        workload = WORKLOAD_BUILDERS["bitcount"](0.2)
        # use_jit=False: the bug is planted in the *interpreter's*
        # dispatch table, so the executor leg must actually run through
        # it for the divergence to be attributed at the executor stage.
        report = diff_workload(workload, use_jit=False)
        assert not report.ok
        assert report.divergence.stage == "executor"
        assert report.divergence.trace  # the minimized trace is populated
        # With the compiled tier on, the executor leg bypasses the
        # corrupted handler but the checker replay still hits it: the
        # oracle remains non-vacuous, attributing at the replay stage.
        jit_report = diff_workload(workload)
        assert not jit_report.ok
        assert jit_report.divergence.stage == "checker"

    def test_replay_only_bug_is_reported(self, monkeypatch):
        # A bug that fires only during checker replay (port is a
        # CheckerReplayPort) is exactly what the engine fastpath hides.
        from repro.lslog.ports import CheckerReplayPort

        original = CheckerReplayPort.load

        def corrupting_load(self, address):
            value = original(self, address)
            return value ^ 1

        monkeypatch.setattr(CheckerReplayPort, "load", corrupting_load)
        workload = WORKLOAD_BUILDERS["bitcount"](0.2)
        report = diff_workload(workload)
        assert not report.ok
        assert report.divergence.stage == "checker"


class TestGetInstretUnderReplay:
    """Satellite: syscall semantics must survive segment re-execution."""

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_syscall_dense_workload_diffs_clean(self, granularity):
        report = diff_workload(
            build_syscall_workload(),
            granularity=granularity,
            checkpoint_interval=7,  # boundaries land between syscalls
        )
        assert report.ok, report.divergence.describe()
        assert report.segments > 3

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_mid_run_segment_replays_without_detection(self, granularity):
        # Fill a segment that starts at a *nonzero* instret and contains
        # GET_INSTRET + PRINT_INT, then re-execute it on a production
        # checker: any instret snapshot/restore slip tags the output
        # stream differently and false-detects.
        workload = build_syscall_workload()
        config = table1_config()
        memory = workload.create_memory()
        tracker = UncheckedLineTracker(config.memory.l1d)
        port = MainMemoryPort(memory, tracker, granularity)
        state = ArchState()
        executor = Executor(workload.program, state, port)

        # Warm up past several syscalls so instret is well away from 0.
        warm = LogSegment(
            seq=1,
            granularity=granularity,
            capacity_bytes=config.checker.log_bytes_per_core,
            start_state=state.snapshot(),
        )
        port.segment = warm
        for _ in range(25):
            executor.step()
        assert state.instret == 25
        warm.close(state.snapshot(), SegmentCloseReason.EXTERNAL)

        segment = LogSegment(
            seq=2,
            granularity=granularity,
            capacity_bytes=config.checker.log_bytes_per_core,
            start_state=state.snapshot(),
        )
        port.segment = segment
        syscalls_replayed = 0
        for _ in range(30):
            info = executor.step()
            segment.record_instruction(
                info.instruction.unit, writes_register=info.dest is not None
            )
            if info.instruction.opcode is Opcode.SYSCALL:
                syscalls_replayed += 1
        assert syscalls_replayed > 0
        assert segment.start_state.instret == 25
        segment.close(state.snapshot(), SegmentCloseReason.EXTERNAL)

        checker = CheckerCore(0, config.checker, workload.program)
        result = checker.check_segment(segment)
        assert not result.detected, f"false detection: {result.detection}"
