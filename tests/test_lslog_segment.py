"""Load-store-log segments: capacity, recording, close semantics."""

import pytest

from repro.isa import ArchState, FunctionalUnit
from repro.lslog import (
    LINE_ENTRY_BYTES,
    LOAD_ENTRY_BYTES,
    LogSegment,
    RollbackGranularity,
    STORE_DETECT_BYTES,
    STORE_OLD_WORD_BYTES,
    SegmentCloseReason,
    SegmentFull,
)


def make_segment(granularity=RollbackGranularity.WORD, capacity=6144, seq=1):
    return LogSegment(
        seq=seq,
        granularity=granularity,
        capacity_bytes=capacity,
        start_state=ArchState(),
    )


class TestRecording:
    def test_load_recorded_in_order(self):
        segment = make_segment()
        segment.record_load(0, 11)
        segment.record_load(8, 22)
        assert segment.loads == [(0, 11), (8, 22)]
        assert segment.load_count == 2

    def test_store_word_granularity_keeps_old(self):
        segment = make_segment(RollbackGranularity.WORD)
        segment.record_store(16, new_value=5, old_value=3)
        assert segment.store_addrs == [16]
        assert segment.store_values == [5]
        assert segment.store_olds == [3]
        assert segment.rollback_entry_count == 1

    def test_store_line_granularity_keeps_line(self):
        segment = make_segment(RollbackGranularity.LINE)
        line = (0, tuple(range(8)))
        segment.record_store(0, 5, 3, line=line)
        segment.record_store(8, 6, 0, line=None)  # same line, no copy
        assert segment.lines == [line]
        assert segment.rollback_entry_count == 1
        assert segment.store_count == 2

    def test_detection_only_keeps_no_rollback_data(self):
        segment = make_segment(RollbackGranularity.NONE)
        segment.record_store(0, 5, 3)
        assert segment.store_olds == []
        assert segment.lines == []
        assert segment.rollback_entry_count == 0

    def test_instruction_histogram(self):
        segment = make_segment()
        segment.record_instruction(FunctionalUnit.INT_ALU, writes_register=True)
        segment.record_instruction(FunctionalUnit.INT_ALU, writes_register=False)
        segment.record_instruction(FunctionalUnit.LOAD, writes_register=True)
        assert segment.instruction_count == 3
        assert segment.unit_histogram[FunctionalUnit.INT_ALU] == 2
        assert segment.unit_dest_histogram[FunctionalUnit.INT_ALU] == 1


class TestCapacity:
    def test_load_bytes_accounted(self):
        segment = make_segment()
        segment.record_load(0, 1)
        assert segment.detection_bytes == LOAD_ENTRY_BYTES

    def test_word_store_bytes(self):
        segment = make_segment(RollbackGranularity.WORD)
        segment.record_store(0, 1, 2)
        assert segment.detection_bytes == STORE_DETECT_BYTES
        assert segment.rollback_bytes == STORE_OLD_WORD_BYTES

    def test_line_store_bytes(self):
        segment = make_segment(RollbackGranularity.LINE)
        segment.record_store(0, 1, 2, line=(0, tuple([0] * 8)))
        assert segment.rollback_bytes == LINE_ENTRY_BYTES

    def test_load_overflow_raises(self):
        segment = make_segment(capacity=LOAD_ENTRY_BYTES * 2)
        segment.record_load(0, 1)
        segment.record_load(8, 2)
        with pytest.raises(SegmentFull):
            segment.record_load(16, 3)

    def test_store_overflow_raises(self):
        segment = make_segment(
            RollbackGranularity.WORD,
            capacity=STORE_DETECT_BYTES + STORE_OLD_WORD_BYTES,
        )
        segment.record_store(0, 1, 2)
        with pytest.raises(SegmentFull):
            segment.record_store(8, 1, 2)

    def test_fits_store_considers_line_copy(self):
        capacity = STORE_DETECT_BYTES + LINE_ENTRY_BYTES
        segment = make_segment(RollbackGranularity.LINE, capacity=capacity)
        assert segment.fits_store(needs_line_copy=True)
        segment.record_store(0, 1, 2, line=(0, tuple([0] * 8)))
        # Another store without a copy no longer fits (detection side full).
        assert not segment.fits_store(needs_line_copy=False)

    def test_detection_and_rollback_share_capacity(self):
        # The two indices grow towards each other (figure 6).
        segment = make_segment(RollbackGranularity.WORD, capacity=100)
        segment.record_load(0, 1)  # 16
        segment.record_store(8, 1, 2)  # 16 + 8
        segment.record_load(16, 1)  # 16
        segment.record_store(24, 1, 2)  # 16 + 8
        assert segment.bytes_used() == 80
        segment.record_load(32, 1)  # 96 <= 100 still fits
        with pytest.raises(SegmentFull):
            segment.record_load(40, 1)


class TestClose:
    def test_close_records_reason_and_state(self):
        segment = make_segment()
        end = ArchState()
        end.pc = 42
        segment.close(end, SegmentCloseReason.TARGET_LENGTH)
        assert segment.is_closed
        assert segment.end_state.pc == 42
        assert segment.close_reason is SegmentCloseReason.TARGET_LENGTH

    def test_double_close_rejected(self):
        segment = make_segment()
        segment.close(ArchState(), SegmentCloseReason.PROGRAM_END)
        with pytest.raises(RuntimeError):
            segment.close(ArchState(), SegmentCloseReason.PROGRAM_END)

    def test_not_closed_initially(self):
        assert not make_segment().is_closed
