"""Timeline recording and the lifecycle-ordering oracle."""

import pytest

from repro.config import table1_config
from repro.core import ParaDoxSystem
from repro.stats import EventKind, Timeline, render_checker_gantt, render_timeline
from repro.workloads import build_bitcount


def run_with_timeline(workload, rate=0.0, seed=3):
    config = table1_config().with_error_rate(rate, seed=seed)
    system = ParaDoxSystem(config=config)
    engine = system.engine(workload, seed=seed)
    engine.options.record_timeline = True
    engine.timeline = Timeline()
    result = engine.run(workload.max_instructions)
    return engine.timeline, result


class TestRecording:
    @pytest.fixture(scope="class")
    def clean(self, bitcount_small):
        return run_with_timeline(bitcount_small)

    @pytest.fixture(scope="class")
    def faulty(self, bitcount_small):
        return run_with_timeline(bitcount_small, rate=1e-3)

    def test_in_time_order_sorts(self, clean):
        timeline, _ = clean
        times = [event.time_ns for event in timeline.in_time_order()]
        assert times == sorted(times)
        assert len(times) == len(timeline.events)

    def test_every_segment_opens_and_closes(self, clean):
        timeline, result = clean
        opens = timeline.of_kind(EventKind.SEGMENT_OPEN)
        closes = timeline.of_kind(EventKind.SEGMENT_CLOSE)
        assert len(closes) == result.segments
        assert len(opens) >= len(closes)

    def test_every_closed_segment_dispatched(self, clean):
        timeline, result = clean
        dispatches = timeline.of_kind(EventKind.DISPATCH)
        assert len(dispatches) == result.segments

    def test_clean_run_commits_everything(self, clean):
        timeline, result = clean
        commits = timeline.of_kind(EventKind.COMMIT)
        assert len(commits) == result.segments
        assert not timeline.of_kind(EventKind.DETECTION)

    def test_faulty_run_records_detections_and_rollbacks(self, faulty):
        timeline, result = faulty
        detections = timeline.of_kind(EventKind.DETECTION)
        rollbacks = timeline.of_kind(EventKind.ROLLBACK)
        assert len(detections) == result.errors_detected
        assert len(rollbacks) == result.errors_detected

    def test_lifecycle_ordering_oracle(self, clean, faulty):
        for timeline, _ in (clean, faulty):
            timeline.validate_ordering()

    def test_detection_carries_channel(self, faulty):
        timeline, _ = faulty
        for event in timeline.of_kind(EventKind.DETECTION):
            assert event.detail  # channel description
            assert event.core >= 0


class TestRendering:
    def test_render_timeline_lines(self, bitcount_small):
        timeline, _ = run_with_timeline(bitcount_small)
        text = render_timeline(timeline, limit=10)
        assert "open" in text
        assert "more events" in text

    def test_render_gantt(self, bitcount_small):
        timeline, _ = run_with_timeline(bitcount_small)
        chart = render_checker_gantt(timeline)
        assert "c00" in chart
        assert "#" in chart

    def test_render_empty_gantt(self):
        assert render_checker_gantt(Timeline()) == "(no dispatches)"

    def test_span(self, bitcount_small):
        timeline, result = run_with_timeline(bitcount_small)
        assert 0 < timeline.span_ns() <= result.wall_ns * 2

    def test_span_is_recording_order_independent(self):
        # Lazily processed commits are recorded *after* later events but
        # carry earlier effective timestamps; span_ns must cover the
        # true earliest..latest range, not first-recorded..last-recorded.
        timeline = Timeline()
        timeline.record(100.0, EventKind.SEGMENT_OPEN, 1)
        timeline.record(900.0, EventKind.SEGMENT_CLOSE, 1)
        timeline.record(50.0, EventKind.COMMIT, 1)  # out of order
        assert timeline.span_ns() == 850.0
