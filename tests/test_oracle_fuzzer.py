"""The ISA program fuzzer: determinism, termination, and shrinking."""

import pytest

from repro.isa import Executor, Opcode
from repro.lslog import RollbackGranularity
from repro.oracle import (
    ReferenceISS,
    build_workload,
    generate_case,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.oracle.fuzzer import PROFILES


def program_fingerprint(case):
    workload = build_workload(case)
    return [str(i) for i in workload.program.instructions]


class TestGeneration:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_same_seed_same_program(self, profile):
        a = generate_case(403, profile)
        b = generate_case(403, profile)
        assert a == b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_different_seeds_differ(self):
        assert program_fingerprint(generate_case(1)) != program_fingerprint(
            generate_case(2)
        )

    @pytest.mark.parametrize("seed", range(1, 21))
    def test_programs_terminate(self, seed):
        # Termination is by construction (forward branches + strictly
        # decremented loop counter): every program halts well inside its
        # budget on the reference ISS alone.
        workload = build_workload(generate_case(seed))
        ref = ReferenceISS(workload.program, initial_words=workload.initial_words)
        ref.run(workload.max_instructions)
        assert ref.halted

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            generate_case(1, "nonexistent")


class TestFuzzCampaign:
    def test_seed_corpus_is_clean(self):
        campaign = run_fuzz(range(1, 31))
        assert campaign.ok, [f.report.divergence.describe() for f in campaign.failures]
        assert campaign.cases == 30 * len(PROFILES)
        assert campaign.instructions > 0

    @pytest.mark.parametrize(
        "granularity", [RollbackGranularity.WORD, RollbackGranularity.NONE]
    )
    def test_other_granularities_clean(self, granularity):
        campaign = run_fuzz(range(1, 11), granularity=granularity)
        assert campaign.ok, [f.report.divergence.describe() for f in campaign.failures]

    def test_report_roundtrips_to_dict(self):
        campaign = run_fuzz(range(1, 3), profiles=("mixed",))
        payload = campaign.to_dict()
        assert payload["ok"] is True
        assert payload["cases"] == 2


class TestShrinking:
    def _install_mul_bug(self, monkeypatch):
        original = Executor._build_dispatch

        def buggy_build(self):
            original(self)
            real = self._dispatch[Opcode.MUL]
            regs = self.state.regs

            def corrupted(instr):
                info = real(instr)
                if instr.rd != 0:
                    regs.write_x(instr.rd, regs.x[instr.rd] ^ (1 << 5))
                return info

            self._dispatch[Opcode.MUL] = corrupted

        monkeypatch.setattr(Executor, "_build_dispatch", buggy_build)

    def test_shrink_reduces_and_still_diverges(self, monkeypatch):
        self._install_mul_bug(monkeypatch)
        diverging = None
        for seed in range(1, 60):
            case = generate_case(seed, "mixed")
            if not run_case(case).ok:
                diverging = case
                break
        assert diverging is not None, "no MUL-exercising seed found"
        shrunk, report = shrink_case(diverging)
        assert not report.ok
        assert len(shrunk.atoms) <= len(diverging.atoms)
        assert len(shrunk.atoms) >= 1
        # The minimised case is itself a valid, still-diverging program.
        assert not run_case(shrunk).ok

    def test_shrink_requires_divergence(self):
        with pytest.raises(ValueError):
            shrink_case(generate_case(1, "mixed"))

    def test_campaign_shrinks_failures(self, monkeypatch):
        self._install_mul_bug(monkeypatch)
        campaign = run_fuzz(range(1, 60), profiles=("mixed",))
        assert not campaign.ok
        failure = campaign.failures[0]
        assert failure.shrunk is not None
        assert len(failure.shrunk.atoms) <= len(failure.case.atoms)
        payload = failure.to_dict()
        assert payload["shrunk_atoms"] == len(failure.shrunk.atoms)
