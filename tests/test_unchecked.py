"""Unchecked-line tracking: timestamps, conflicts, release/drop."""

import pytest

from repro.config import CacheConfig
from repro.memory import UncheckedLineTracker


def make_tracker(sets=4, ways=2):
    return UncheckedLineTracker(
        CacheConfig(sets * ways * 64, ways, hit_latency_cycles=1, mshrs=4)
    )


class TestTimestamps:
    def test_clean_line_has_no_timestamp(self):
        tracker = make_tracker()
        assert tracker.timestamp_of(0) is None

    def test_commit_write_stamps_line(self):
        tracker = make_tracker()
        tracker.commit_write(8, checkpoint_id=3)
        assert tracker.timestamp_of(0) == 3
        assert tracker.timestamp_of(40) == 3  # same line

    def test_needs_copy_first_touch(self):
        tracker = make_tracker()
        assert tracker.needs_copy(0, 1)

    def test_needs_copy_false_within_same_checkpoint(self):
        tracker = make_tracker()
        tracker.commit_write(0, 5)
        assert not tracker.needs_copy(8, 5)  # same line, same checkpoint

    def test_needs_copy_true_for_newer_checkpoint(self):
        tracker = make_tracker()
        tracker.commit_write(0, 5)
        assert tracker.needs_copy(0, 6)


class TestConflicts:
    def test_no_conflict_with_free_ways(self):
        tracker = make_tracker(ways=2)
        tracker.commit_write(0, 1)
        assert not tracker.would_conflict(256)  # 4 sets x 64B: 256 -> set 0

    def test_conflict_when_set_full(self):
        tracker = make_tracker(sets=4, ways=2)
        tracker.commit_write(0, 1)  # set 0
        tracker.commit_write(256, 1)  # set 0 (4 sets * 64B = 256 stride)
        assert tracker.would_conflict(512)  # third distinct line, set 0
        assert not tracker.would_conflict(64)  # set 1 free

    def test_existing_line_never_conflicts(self):
        tracker = make_tracker(sets=4, ways=2)
        tracker.commit_write(0, 1)
        tracker.commit_write(256, 1)
        assert not tracker.would_conflict(0)

    def test_commit_despite_conflict_raises(self):
        tracker = make_tracker(sets=4, ways=2)
        tracker.commit_write(0, 1)
        tracker.commit_write(256, 1)
        with pytest.raises(RuntimeError):
            tracker.commit_write(512, 1)

    def test_conflict_stat_via_record_write(self):
        tracker = make_tracker(sets=4, ways=2)
        tracker.commit_write(0, 1)
        tracker.commit_write(256, 1)
        outcome = tracker.record_write(512, 1)
        assert outcome.conflict
        assert tracker.stats.conflicts == 1
        # State unchanged by the conflicting record_write.
        assert tracker.timestamp_of(512) is None


class TestReleaseAndDrop:
    def test_release_through(self):
        tracker = make_tracker()
        tracker.commit_write(0, 1)
        tracker.commit_write(64, 2)
        tracker.commit_write(128, 3)
        released = tracker.release_through(2)
        assert released == 2
        assert tracker.timestamp_of(0) is None
        assert tracker.timestamp_of(128) == 3

    def test_release_frees_set_capacity(self):
        tracker = make_tracker(sets=4, ways=2)
        tracker.commit_write(0, 1)
        tracker.commit_write(256, 1)
        assert tracker.would_conflict(512)
        tracker.release_through(1)
        assert not tracker.would_conflict(512)

    def test_drop_after_rollback(self):
        tracker = make_tracker()
        tracker.commit_write(0, 1)
        tracker.commit_write(64, 5)
        dropped = tracker.drop_after(1)
        assert dropped == 1
        assert tracker.timestamp_of(0) == 1
        assert tracker.timestamp_of(64) is None

    def test_clear(self):
        tracker = make_tracker()
        tracker.commit_write(0, 1)
        tracker.clear()
        assert tracker.unchecked_lines() == 0
        assert not tracker.would_conflict(0)

    def test_line_copy_stat(self):
        tracker = make_tracker()
        tracker.commit_write(0, 1)  # first touch: copy
        tracker.commit_write(8, 1)  # same line, same ckpt: no copy
        tracker.commit_write(0, 2)  # newer ckpt: copy
        assert tracker.stats.line_copies == 2
