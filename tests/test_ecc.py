"""SECDED(72,64) codec: correction and detection guarantees."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import (
    CODE_BITS,
    DATA_BITS,
    EccProtectedWord,
    EccStatus,
    decode,
    encode,
    extract_data,
    flip_bits,
)

WORDS = st.integers(min_value=0, max_value=(1 << DATA_BITS) - 1)


class TestCleanPath:
    @given(WORDS)
    def test_roundtrip(self, data):
        result = decode(encode(data))
        assert result.status is EccStatus.CLEAN
        assert result.data == data

    def test_zero(self):
        assert encode(0) == 0  # all-zero data has all-zero checks

    def test_extract_data(self):
        codeword = encode(0x123456789ABCDEF0)
        assert extract_data(codeword) == 0x123456789ABCDEF0

    def test_encode_rejects_oversized(self):
        with pytest.raises(ValueError):
            encode(1 << 64)

    def test_decode_rejects_oversized(self):
        with pytest.raises(ValueError):
            decode(1 << 72)


class TestSingleErrorCorrection:
    @pytest.mark.parametrize("position", list(range(1, CODE_BITS + 1)))
    def test_every_position_correctable(self, position):
        data = 0xA5A5_5A5A_0F0F_F0F0
        corrupted = flip_bits(encode(data), (position,))
        result = decode(corrupted)
        assert result.status is EccStatus.CORRECTED
        assert result.data == data
        assert result.corrected_position == position

    @given(WORDS, st.integers(min_value=1, max_value=CODE_BITS))
    def test_single_flip_always_corrected(self, data, position):
        result = decode(flip_bits(encode(data), (position,)))
        assert result.status is EccStatus.CORRECTED
        assert result.data == data


class TestDoubleErrorDetection:
    @given(
        WORDS,
        st.tuples(
            st.integers(min_value=1, max_value=CODE_BITS),
            st.integers(min_value=1, max_value=CODE_BITS),
        ).filter(lambda t: t[0] != t[1]),
    )
    def test_double_flip_detected_not_miscorrected(self, data, positions):
        result = decode(flip_bits(encode(data), positions))
        assert result.status is EccStatus.DOUBLE_ERROR

    def test_flip_bits_validates_positions(self):
        with pytest.raises(ValueError):
            flip_bits(0, (0,))
        with pytest.raises(ValueError):
            flip_bits(0, (CODE_BITS + 1,))


class TestProtectedWord:
    def test_read_clean(self):
        cell = EccProtectedWord(42)
        assert cell.read().data == 42
        assert cell.read().status is EccStatus.CLEAN

    def test_upset_corrected_and_scrubbed(self):
        cell = EccProtectedWord(42)
        cell.upset(7)
        first = cell.read()
        assert first.status is EccStatus.CORRECTED
        assert first.data == 42
        # Scrubbed on read: second read is clean.
        assert cell.read().status is EccStatus.CLEAN

    def test_double_upset_detected(self):
        cell = EccProtectedWord(42)
        cell.upset(7, 20)
        assert cell.read().status is EccStatus.DOUBLE_ERROR

    def test_write_replaces(self):
        cell = EccProtectedWord(1)
        cell.write(2)
        assert cell.read().data == 2
