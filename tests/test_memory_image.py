"""Memory image: word access, bounds, lines, snapshots."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    LINE_BYTES,
    MASK64,
    MemoryAlignmentTrap,
    MemoryBoundsTrap,
    MemoryImage,
    WORDS_PER_LINE,
    line_address,
)


class TestWordAccess:
    def test_uninitialised_reads_zero(self):
        assert MemoryImage().load(64) == 0

    def test_store_load(self):
        mem = MemoryImage()
        mem.store(8, 123)
        assert mem.load(8) == 123

    def test_store_masks(self):
        mem = MemoryImage()
        mem.store(8, MASK64 + 2)
        assert mem.load(8) == 1

    def test_unaligned_load_traps(self):
        with pytest.raises(MemoryAlignmentTrap):
            MemoryImage().load(5)

    def test_unaligned_store_traps(self):
        with pytest.raises(MemoryAlignmentTrap):
            MemoryImage().store(9, 1)

    def test_out_of_bounds_traps(self):
        mem = MemoryImage(size=1024)
        with pytest.raises(MemoryBoundsTrap):
            mem.load(2048)
        with pytest.raises(MemoryBoundsTrap):
            mem.store(-8, 1)

    def test_floats(self):
        mem = MemoryImage()
        mem.store_float(16, 3.25)
        assert mem.load_float(16) == 3.25

    def test_bulk_words(self):
        mem = MemoryImage()
        mem.write_words(0, [1, 2, 3])
        assert mem.read_words(0, 3) == [1, 2, 3]

    def test_bulk_floats(self):
        mem = MemoryImage()
        mem.write_floats(64, [1.0, 2.0])
        assert mem.read_floats(64, 2) == [1.0, 2.0]


class TestLines:
    def test_line_address(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_read_line_shape(self):
        mem = MemoryImage()
        mem.store(64, 11)
        mem.store(72, 22)
        line = mem.read_line(70)
        assert len(line) == WORDS_PER_LINE
        assert line[0] == 11 and line[1] == 22

    def test_write_line_restores(self):
        mem = MemoryImage()
        mem.store(128, 1)
        mem.store(136, 2)
        saved = mem.read_line(128)
        mem.store(128, 99)
        mem.store(144, 77)
        mem.write_line(128, saved)
        assert mem.load(128) == 1
        assert mem.load(136) == 2
        assert mem.load(144) == 0  # was zero in the saved copy

    @given(
        st.lists(
            st.integers(min_value=0, max_value=MASK64),
            min_size=WORDS_PER_LINE,
            max_size=WORDS_PER_LINE,
        )
    )
    def test_line_roundtrip(self, words):
        mem = MemoryImage()
        base = 4 * LINE_BYTES
        for i, word in enumerate(words):
            mem.store(base + i * 8, word)
        snapshot = mem.read_line(base)
        for i in range(WORDS_PER_LINE):
            mem.store(base + i * 8, 0xABCD)
        mem.write_line(base, snapshot)
        assert list(mem.read_line(base)) == words


class TestSnapshotsAndEquality:
    def test_snapshot_independent(self):
        mem = MemoryImage()
        mem.store(0, 5)
        snap = mem.snapshot()
        mem.store(0, 6)
        assert snap.load(0) == 5

    def test_equality_ignores_explicit_zeros(self):
        a, b = MemoryImage(), MemoryImage()
        a.store(8, 0)  # explicit zero == untouched
        assert a == b

    def test_equality_detects_difference(self):
        a, b = MemoryImage(), MemoryImage()
        a.store(8, 1)
        assert a != b

    def test_len_counts_nonzero_words(self):
        mem = MemoryImage()
        mem.store(0, 1)
        mem.store(8, 0)
        mem.store(16, 2)
        assert len(mem) == 2

    def test_iteration_sorted(self):
        mem = MemoryImage()
        mem.store(16, 2)
        mem.store(0, 1)
        assert list(mem) == [(0, 1), (16, 2)]
