"""Main-core logging port and checker replay port."""

import pytest

from repro.config import CacheConfig
from repro.isa import ArchState, MemoryImage
from repro.lslog import (
    CheckerReplayPort,
    LoadAddressMismatch,
    LogExhausted,
    LogSegment,
    MainMemoryPort,
    RollbackGranularity,
    StoreAddressMismatch,
    StoreMismatch,
    UncheckedConflictStall,
)
from repro.memory import UncheckedLineTracker


def make_port(granularity=RollbackGranularity.WORD, sets=4, ways=2, capacity=6144):
    memory = MemoryImage()
    tracker = UncheckedLineTracker(
        CacheConfig(sets * ways * 64, ways, hit_latency_cycles=1, mshrs=4)
    )
    port = MainMemoryPort(memory, tracker, granularity)
    port.segment = LogSegment(
        seq=1, granularity=granularity, capacity_bytes=capacity, start_state=ArchState()
    )
    return port


class TestMainPortLoads:
    def test_load_reads_memory_and_logs(self):
        port = make_port()
        port.memory.store(64, 42)
        assert port.load(64) == 42
        assert port.segment.loads == [(64, 42)]


class TestMainPortStores:
    def test_store_writes_memory_and_logs_old(self):
        port = make_port()
        port.memory.store(64, 1)
        port.store(64, 2)
        assert port.memory.load(64) == 2
        assert port.segment.store_olds == [1]

    def test_line_granularity_copies_first_touch_only(self):
        port = make_port(RollbackGranularity.LINE)
        port.memory.store(64, 7)
        port.store(64, 1)
        port.store(72, 2)  # same line, same checkpoint
        assert len(port.segment.lines) == 1
        line_addr, words = port.segment.lines[0]
        assert line_addr == 64
        assert words[0] == 7  # pre-store contents

    def test_conflict_raises_before_any_mutation(self):
        port = make_port(RollbackGranularity.LINE, sets=4, ways=2)
        port.store(0, 1)
        port.store(256, 1)
        before_log = len(port.segment.store_addrs)
        with pytest.raises(UncheckedConflictStall):
            port.store(512, 1)
        assert len(port.segment.store_addrs) == before_log
        assert port.memory.load(512) == 0
        assert port.tracker.timestamp_of(512) is None

    def test_detection_only_ignores_tracker(self):
        port = make_port(RollbackGranularity.NONE, sets=4, ways=2)
        # Way more same-set stores than the L1 could buffer: no conflicts.
        for i in range(10):
            port.store(i * 256, i)
        assert port.segment.store_count == 10


class TestCheckerReplayLoads:
    def make_checked_segment(self):
        port = make_port()
        port.memory.store(0, 10)
        port.memory.store(8, 20)
        port.load(0)
        port.load(8)
        port.store(16, 30)
        return port.segment

    def test_replay_in_order(self):
        replay = CheckerReplayPort(self.make_checked_segment())
        assert replay.load(0) == 10
        assert replay.load(8) == 20

    def test_address_mismatch_detected(self):
        replay = CheckerReplayPort(self.make_checked_segment())
        with pytest.raises(LoadAddressMismatch):
            replay.load(8)  # logged address is 0

    def test_exhaustion_detected(self):
        replay = CheckerReplayPort(self.make_checked_segment())
        replay.load(0)
        replay.load(8)
        with pytest.raises(LogExhausted):
            replay.load(16)

    def test_load_corruptor_applied(self):
        segment = self.make_checked_segment()
        replay = CheckerReplayPort(segment, load_corruptor=lambda i, v: v ^ 1)
        assert replay.load(0) == 11


class TestCheckerReplayStores:
    def make_segment_with_store(self):
        port = make_port()
        port.store(16, 30)
        return port.segment

    def test_matching_store_passes(self):
        replay = CheckerReplayPort(self.make_segment_with_store())
        replay.store(16, 30)
        assert replay.fully_consumed

    def test_value_mismatch_detected(self):
        replay = CheckerReplayPort(self.make_segment_with_store())
        with pytest.raises(StoreMismatch):
            replay.store(16, 31)

    def test_address_mismatch_detected(self):
        replay = CheckerReplayPort(self.make_segment_with_store())
        with pytest.raises(StoreAddressMismatch):
            replay.store(24, 30)

    def test_store_exhaustion(self):
        replay = CheckerReplayPort(self.make_segment_with_store())
        replay.store(16, 30)
        with pytest.raises(LogExhausted):
            replay.store(24, 1)

    def test_store_corruptor_causes_mismatch(self):
        segment = self.make_segment_with_store()
        replay = CheckerReplayPort(segment, store_corruptor=lambda i, v: v ^ 4)
        with pytest.raises(StoreMismatch):
            replay.store(16, 30)  # the *reference* got corrupted

    def test_not_fully_consumed_without_replay(self):
        replay = CheckerReplayPort(self.make_segment_with_store())
        assert not replay.fully_consumed

    def test_detection_carries_instruction_index_slot(self):
        replay = CheckerReplayPort(self.make_segment_with_store())
        try:
            replay.store(16, 99)
        except StoreMismatch as detection:
            assert detection.instruction_index is None  # set by the checker
            assert detection.channel.value == "store comparison"
