"""Paranoid mode: transparent when healthy, loud when bookkeeping lies."""

import pytest

from repro.core import ParaDoxSystem, ParaMedicSystem
from repro.core.systems import BaselineSystem
from repro.faults.injector import default_injector
from repro.lslog import SegmentCloseReason
from repro.oracle import EngineInvariantError, ParanoidChecker
from repro.workloads import build_spec_workload


def fingerprint(result):
    return (
        result.outcome,
        result.instructions,
        result.instructions_executed,
        result.segments,
        result.wall_ns,
        len(result.recoveries),
        result.program_output,
        result.mean_checkpoint_length,
    )


class TestTransparency:
    @pytest.mark.parametrize("system_cls", [ParaMedicSystem, ParaDoxSystem])
    def test_results_bit_identical_with_paranoid(self, system_cls):
        workload = build_spec_workload("mcf", iterations=6, seed=9)
        plain = system_cls().run(workload, seed=9)
        watched = system_cls(paranoid=True).run(workload, seed=9)
        assert fingerprint(watched) == fingerprint(plain)

    def test_disabled_engine_has_no_checker(self):
        workload = build_spec_workload("sjeng", iterations=2, seed=3)
        engine = ParaMedicSystem().engine(workload, seed=3)
        assert engine.paranoid is None
        engine = ParaMedicSystem(paranoid=True).engine(workload, seed=3)
        assert engine.paranoid is not None


class TestFaultHeavyRuns:
    """Rollback and quarantine paths must satisfy the invariants too."""

    @pytest.mark.parametrize("target", ["checker", "main"])
    def test_injected_runs_complete_under_paranoid(self, target):
        workload = build_spec_workload("mcf", iterations=8, seed=21)
        rate = 1e-4 if target == "checker" else 1e-3
        injector = default_injector(rate, seed=21, target=target)
        result = ParaMedicSystem(paranoid=True).run(
            workload, seed=21, injector=injector
        )
        assert result.outcome.value == "completed"
        assert result.recoveries, "fault rate chosen to force recoveries"

    def test_paradox_dvs_run_under_paranoid(self):
        workload = build_spec_workload("sjeng", iterations=6, seed=4)
        result = ParaDoxSystem(dvs=True, paranoid=True).run(workload, seed=4)
        assert result.outcome.value == "completed"


class TestDetectsCorruption:
    """The assertions are live: seeded inconsistencies must raise."""

    def _running_engine(self):
        workload = build_spec_workload("mcf", iterations=4, seed=5)
        engine = ParaMedicSystem(paranoid=True).engine(workload, seed=5)
        # Run a slice so tracker/pending state is populated.
        engine.run(max_instructions=400)
        return engine

    def test_bogus_tracker_stamp_raises(self):
        engine = self._running_engine()
        engine.tracker._timestamp[0xDEAD000] = 999
        with pytest.raises(EngineInvariantError, match="tracker|stamped"):
            engine.paranoid.verify(engine, "test")

    def test_set_load_counter_drift_raises(self):
        engine = self._running_engine()
        engine.tracker._set_load[0] += 1
        with pytest.raises(EngineInvariantError, match="set-load"):
            engine.paranoid.verify(engine, "test")

    def test_detection_counter_drift_raises(self):
        engine = self._running_engine()
        engine._pending_detected += 3
        with pytest.raises(EngineInvariantError, match="detection counter"):
            engine.paranoid.verify(engine, "test")

    def test_non_monotonic_close_raises(self):
        engine = self._running_engine()
        checker = engine.paranoid
        segment = engine._segment
        assert segment is not None
        checker._last_closed_seq = segment.seq + 50
        segment.close(engine.state.snapshot(), SegmentCloseReason.EXTERNAL)
        with pytest.raises(EngineInvariantError, match="monotonic"):
            checker.on_close(engine, segment)

    def test_unclosed_segment_raises_on_close_hook(self):
        engine = self._running_engine()
        segment = engine._segment
        assert segment is not None and not segment.is_closed
        with pytest.raises(EngineInvariantError, match="not marked closed"):
            engine.paranoid.on_close(engine, segment)

    def test_stale_stamp_after_rollback_raises(self):
        engine = self._running_engine()
        engine.tracker._timestamp[0xBEEF000] = 10_000
        with pytest.raises(EngineInvariantError, match="rollback|survive"):
            engine.paranoid.on_rollback(engine, 1)

    def test_fresh_checker_accepts_baseline_engine(self):
        # Checking=False engines have no pool/dvfs; verify() must cope.
        workload = build_spec_workload("sjeng", iterations=2, seed=2)
        engine = BaselineSystem(paranoid=True).engine(workload, seed=2)
        engine.run(max_instructions=200)
        ParanoidChecker().verify(engine, "baseline")
