"""AIMD checkpoint-length controller (section IV-A)."""

from repro.checkpoint import CheckpointLengthController, LengthEvent
from repro.config import CheckpointConfig


def make(adaptive=True, **overrides):
    config = CheckpointConfig(**overrides) if overrides else CheckpointConfig()
    return CheckpointLengthController(config, adaptive=adaptive)


class TestAdditiveIncrease:
    def test_clean_checkpoint_adds_ten(self):
        controller = make()
        start = controller.target
        controller.observe(start, LengthEvent.CLEAN)
        assert controller.target == start + 10

    def test_capped_at_max(self):
        controller = make()
        for _ in range(1000):
            controller.observe(controller.target, LengthEvent.CLEAN)
        assert controller.target == CheckpointConfig().max_instructions

    def test_initial_value(self):
        assert make().target == CheckpointConfig().initial_instructions


class TestMultiplicativeDecrease:
    def test_error_halves(self):
        controller = make()
        start = controller.target
        controller.observe(start, LengthEvent.ERROR)
        assert controller.target == start // 2

    def test_eviction_also_shrinks(self):
        controller = make()
        start = controller.target
        controller.observe(start, LengthEvent.EVICTION)
        assert controller.target == start // 2

    def test_clamp_to_observed(self):
        """ParaDox: new target = min(target/2, observed previous length)."""
        controller = make()
        controller.observe(120, LengthEvent.ERROR)  # min(500, 120) = 120
        assert controller.target == 120

    def test_half_wins_when_smaller_than_observed(self):
        controller = make()
        controller.observe(900, LengthEvent.ERROR)  # min(500, 900) = 500
        assert controller.target == 500

    def test_floor(self):
        controller = make()
        for _ in range(20):
            controller.observe(5, LengthEvent.ERROR)
        assert controller.target == CheckpointConfig().min_instructions

    def test_clamp_disabled_by_config(self):
        controller = CheckpointLengthController(
            CheckpointConfig(clamp_to_observed=False), adaptive=True
        )
        controller.observe(50, LengthEvent.ERROR)
        assert controller.target == 500  # plain halving only


class TestNonAdaptive:
    def test_paramedic_ignores_errors(self):
        controller = make(adaptive=False)
        start = controller.target
        controller.observe(start, LengthEvent.ERROR)
        assert controller.target == start + 10  # still grows

    def test_paramedic_ignores_evictions(self):
        controller = make(adaptive=False)
        start = controller.target
        controller.observe(start, LengthEvent.EVICTION)
        assert controller.target == start + 10


class TestRecoveryDynamics:
    def test_recovers_after_error_burst(self):
        controller = make()
        for _ in range(6):
            controller.observe(controller.target, LengthEvent.ERROR)
        low = controller.target
        for _ in range(600):
            controller.observe(controller.target, LengthEvent.CLEAN)
        assert controller.target > low * 10

    def test_stats_counted(self):
        controller = make()
        controller.observe(100, LengthEvent.CLEAN)
        controller.observe(100, LengthEvent.ERROR)
        assert controller.stats.increases == 1
        assert controller.stats.decreases == 1
