"""Store-backed campaigns: interrupt/resume bit-identity, sharding, CLI."""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.resilience import CampaignSpec, run_campaign
from repro.store import CampaignStore, StoreError, campaign_key

REPO_ROOT = Path(__file__).resolve().parents[1]


def small_spec(workers=1, seeds=4):
    return CampaignSpec(
        workload="bitcount",
        scale=0.1,
        seeds=seeds,
        rates=(1e-4,),
        models=("transient",),
        timeout_s=60.0,
        workers=workers,
    )


def canonical(report):
    return json.dumps(report.to_dict(canonical=True), sort_keys=True)


class Interrupter:
    """Progress callback that raises after ``after`` classified runs."""

    def __init__(self, after):
        self.after = after
        self.seen = 0

    def __call__(self, record):
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt("simulated interrupt")


class TestResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_resume_is_canonically_identical(
        self, tmp_path, workers
    ):
        reference = canonical(run_campaign(small_spec(workers=1)))

        store = str(tmp_path / "store.sqlite")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                small_spec(workers=workers),
                progress=Interrupter(after=2),
                store_path=store,
            )
        with CampaignStore(store) as s:
            key = campaign_key(small_spec().to_dict())
            recorded = s.recorded_count(key)
            assert 0 < recorded < 4  # genuinely interrupted mid-campaign
        # Resume at a *different* worker width than the interrupted run.
        resumed = run_campaign(
            small_spec(workers=3 - workers), store_path=store, resume=True
        )
        assert canonical(resumed) == reference
        with CampaignStore(store) as s:
            assert s.pending_cells(key) == []

    def test_resume_skips_completed_cells(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        launches, cached = [], []
        run_campaign(
            small_spec(), store_path=store, on_start=launches.append
        )
        assert len(launches) == 4
        launches.clear()
        run_campaign(
            small_spec(),
            store_path=store,
            resume=True,
            on_start=launches.append,
            on_cached=cached.append,
        )
        assert launches == []  # nothing re-executed
        assert len(cached) == 4

    def test_existing_records_without_resume_refused(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        run_campaign(small_spec(), store_path=store)
        with pytest.raises(StoreError):
            run_campaign(small_spec(), store_path=store)

    def test_store_holds_report_equivalent_records(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        report = run_campaign(small_spec(), store_path=store)
        with CampaignStore(store) as s:
            key = campaign_key(small_spec().to_dict())
            stored = s.load_records(key)
        assert [r["seed"] for r in stored] == [r.seed for r in report.records]
        assert [r["run_class"] for r in stored] == [
            r.run_class.value for r in report.records
        ]


class TestSharding:
    def test_shards_reassemble_the_full_campaign(self, tmp_path):
        reference = canonical(run_campaign(small_spec(seeds=6)))
        stores = []
        for k in (1, 2):
            store = str(tmp_path / f"shard{k}.sqlite")
            stores.append(store)
            run_campaign(
                small_spec(seeds=6), store_path=store, shard=(k, 2)
            )
        merged = str(tmp_path / "merged.sqlite")
        with CampaignStore(merged) as dest:
            for store in stores:
                dest.merge_from(store)
            key = campaign_key(small_spec(seeds=6).to_dict())
            assert dest.pending_cells(key) == []
        resumed = run_campaign(
            small_spec(seeds=6), store_path=merged, resume=True
        )
        assert canonical(resumed) == reference

    def test_shards_execute_disjoint_cells(self, tmp_path):
        seen = []
        for k in (1, 2, 3):
            report = run_campaign(
                small_spec(seeds=6),
                store_path=str(tmp_path / f"s{k}.sqlite"),
                shard=(k, 3),
            )
            seen.extend(record.run_id for record in report.records)
        assert sorted(seen) == list(range(6))


class TestCampaignCLI:
    def parse(self, *argv):
        return build_parser().parse_args(["campaign", *argv])

    def test_store_flags_parse(self):
        args = self.parse("--store", "s.sqlite", "--resume", "--shard", "2/4")
        assert args.store == "s.sqlite"
        assert args.resume is True
        assert args.shard == "2/4"

    def test_resume_requires_store(self, capsys):
        from repro.cli import cmd_campaign

        with pytest.raises(SystemExit):
            cmd_campaign(self.parse("--resume", "--smoke"))

    def test_bad_shard_exits(self):
        from repro.cli import cmd_campaign

        with pytest.raises(SystemExit):
            cmd_campaign(self.parse("--smoke", "--shard", "9/4"))


CLI_GRID = [
    "--workload", "bitcount", "--scale", "0.1", "--seeds", "8",
    "--models", "transient", "--workers", "2", "--quiet",
]


def run_cli(*argv, check=True, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env=env,
        check=check,
        capture_output=True,
        text=True,
        **kwargs,
    )


class TestKillResume:
    def recorded(self, store):
        if not os.path.exists(store):
            return 0
        conn = sqlite3.connect(store)
        try:
            return int(
                conn.execute("SELECT COUNT(*) FROM run_records").fetchone()[0]
            )
        except sqlite3.OperationalError:  # schema not created yet
            return 0
        finally:
            conn.close()

    def test_sigkill_resume_report_is_byte_identical(self, tmp_path):
        ref_json = str(tmp_path / "ref.json")
        run_cli(
            "campaign", *CLI_GRID,
            "--store", str(tmp_path / "ref.sqlite"), "--json", ref_json,
        )

        store = str(tmp_path / "store.sqlite")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", *CLI_GRID,
             "--store", store],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if self.recorded(store) >= 1 or process.poll() is not None:
                    break
                time.sleep(0.005)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=30)

        resumed_json = str(tmp_path / "resumed.json")
        run_cli(
            "campaign", *CLI_GRID,
            "--store", store, "--resume", "--json", resumed_json,
        )
        with open(ref_json, "rb") as a, open(resumed_json, "rb") as b:
            assert a.read() == b.read()
