"""The resilience layer's invariant, property-tested.

Whatever the seeded fault storm — transient composite, Gilbert–Elliott
bursts, permanent stuck-at bits, any rate, any seed — a resilient
ParaDox run must end in a *typed* outcome: completed (bit-identical to
the golden run), livelock, or forward-progress failure.  It must never
escape with an unhandled exception; and a permanent fault at the safe
voltage must surface as a forward-progress failure naming the defective
unit, never as a livelock abort.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ParaDoxSystem
from repro.faults import (
    BurstFaultModel,
    FaultInjector,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
    StuckAtFaultModel,
)
from repro.isa import FunctionalUnit
from repro.stats import RunOutcome
from repro.workloads import WorkloadProfile, build_synthetic, golden_run

PROFILES = st.builds(
    WorkloadProfile,
    name=st.just("resilience-prop"),
    alu=st.floats(min_value=1.0, max_value=8.0),
    mul=st.floats(min_value=0.0, max_value=1.0),
    load=st.floats(min_value=0.5, max_value=4.0),
    store=st.floats(min_value=0.5, max_value=3.0),
    working_set_kib=st.sampled_from([32, 128]),
    sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    code_blocks=st.integers(min_value=1, max_value=4),
    block_ops=st.integers(min_value=8, max_value=24),
)

COMMON_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

TYPED_OUTCOMES = {
    RunOutcome.COMPLETED,
    RunOutcome.LIVELOCK,
    RunOutcome.FORWARD_PROGRESS_FAILURE,
}


def storm_injector(rate, seed, bursts=False):
    rng = np.random.default_rng(seed)
    models = [
        RegisterFaultModel(rate, rng),
        FunctionalUnitFaultModel(rate, rng, FunctionalUnit.INT_MUL),
        MemoryFaultModel(rate, rng, target="load"),
    ]
    if bursts:
        models.append(
            BurstFaultModel(rate, rng, burst_rate=0.1, mean_burst_ops=300.0)
        )
    return FaultInjector(models, target="checker")


class TestTypedOutcomeProperty:
    @COMMON_SETTINGS
    @given(
        profile=PROFILES,
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.sampled_from([1e-4, 1e-3, 5e-3]),
        bursts=st.booleans(),
    )
    def test_any_storm_ends_in_a_typed_outcome(self, profile, seed, rate, bursts):
        workload = build_synthetic(profile, iterations=3, seed=seed % 1000)
        golden = golden_run(workload)
        engine = ParaDoxSystem(resilient=True).engine(
            workload, seed=seed, injector=storm_injector(rate, seed, bursts)
        )
        engine.options.livelock_factor = 32
        result = engine.run(workload.max_instructions)  # must not raise
        assert result.outcome in TYPED_OUTCOMES
        if result.outcome is RunOutcome.COMPLETED:
            assert engine.memory == golden.memory
            assert result.program_output == golden.output
        elif result.outcome is RunOutcome.FORWARD_PROGRESS_FAILURE:
            assert result.failure is not None

    @COMMON_SETTINGS
    @given(
        profile=PROFILES,
        seed=st.integers(min_value=0, max_value=2**31),
        unit=st.sampled_from([FunctionalUnit.INT_ALU, FunctionalUnit.INT_MUL]),
        bit=st.integers(min_value=0, max_value=47),
    )
    def test_stuck_at_fails_typed_at_safe_voltage(self, profile, seed, unit, bit):
        """A permanent defect at the safe voltage (no DVS) must produce a
        forward-progress failure naming the unit — never LivelockError."""
        workload = build_synthetic(profile, iterations=3, seed=seed % 1000)
        rng = np.random.default_rng(seed)
        injector = FaultInjector(
            [StuckAtFaultModel(rng, unit=unit, bit=bit)], target="checker"
        )
        engine = ParaDoxSystem(resilient=True).engine(
            workload, seed=seed, injector=injector
        )
        result = engine.run(workload.max_instructions)  # must not raise
        assert result.outcome in (
            RunOutcome.COMPLETED,  # every firing masked (bit already held)
            RunOutcome.FORWARD_PROGRESS_FAILURE,
        )
        assert not result.livelocked
        if result.outcome is RunOutcome.FORWARD_PROGRESS_FAILURE:
            assert any(
                unit.value in desc for desc in result.failure.suspected_faults
            )


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_bound_stuck_at_quarantine_keeps_run_alive(seed):
    """A defective *checker* is quarantined and the run still completes."""
    profile = WorkloadProfile(
        name="quarantine", alu=4, load=2, store=2, code_blocks=2, block_ops=16,
        working_set_kib=64, sequential_fraction=0.5,
    )
    workload = build_synthetic(profile, iterations=12, seed=seed)
    golden = golden_run(workload)
    rng = np.random.default_rng(seed)
    injector = FaultInjector(
        [StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=1)],
        target="checker",
    )
    engine = ParaDoxSystem(resilient=True).engine(
        workload, seed=seed, injector=injector
    )
    # Lowest-free-ID scheduling starts at the pool's randomised boot
    # offset, so bind the defect to the core that will actually replay
    # segments (a defect on a never-selected core is vacuously benign).
    defective = engine.pool.boot_offset
    injector.models[0].bound_checker_id = defective
    result = engine.run(workload.max_instructions)
    assert result.outcome is RunOutcome.COMPLETED
    assert engine.memory == golden.memory
    assert result.program_output == golden.output
    assert [e.core_id for e in result.quarantine_events] == [defective]
