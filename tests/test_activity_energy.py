"""Activity-based energy accounting."""

import pytest

from repro.config import ENERGY_PER_INSTRUCTION, table1_config
from repro.core import BaselineSystem, ParaDoxSystem
from repro.power import activity_report, mix_energy, recovery_energy_overhead
from repro.workloads import build_bitcount, build_stream


class TestMixEnergy:
    def test_single_class(self):
        assert mix_energy({"int_alu": 10}) == 10.0

    def test_weighted_sum(self):
        energy = mix_energy({"int_alu": 2, "fp_div": 1})
        assert energy == 2.0 + ENERGY_PER_INSTRUCTION["fp_div"]

    def test_unknown_unit_rejected(self):
        with pytest.raises(KeyError):
            mix_energy({"quantum": 1})

    def test_empty_mix(self):
        assert mix_energy({}) == 0.0


class TestRunAccounting:
    def test_unit_mix_populated(self, bitcount_small):
        result = BaselineSystem().run(bitcount_small)
        assert sum(result.unit_mix.values()) == result.instructions_executed
        assert "int_alu" in result.unit_mix

    def test_error_free_run_wastes_nothing(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small)
        report = activity_report(result)
        assert report.waste_fraction == pytest.approx(0.0)
        assert report.executed_energy == pytest.approx(report.useful_energy)

    def test_faulty_run_wastes_energy(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        assert result.errors_detected > 0
        report = activity_report(result)
        assert report.wasted_energy > 0
        assert 0 < report.waste_fraction < 1

    def test_fp_workload_more_energy_per_instruction(self, stream_small, bitcount_small):
        stream_report = activity_report(BaselineSystem().run(stream_small))
        bitcount_report = activity_report(BaselineSystem().run(bitcount_small))
        assert (
            stream_report.energy_per_instruction
            > bitcount_report.energy_per_instruction
        )

    def test_recovery_overhead_comparison(self, bitcount_small):
        clean = ParaDoxSystem().run(bitcount_small)
        faulty = ParaDoxSystem(
            config=table1_config().with_error_rate(1e-3)
        ).run(bitcount_small)
        overhead = recovery_energy_overhead(faulty, clean)
        assert overhead["energy_ratio"] > 1.0
        assert overhead["reexecution_ratio"] > 1.0
        assert overhead["waste_fraction"] > 0.0

    def test_mix_survives_rollback_accounting(self, bitcount_small):
        """Executed mix counts wasted instructions; useful count does not."""
        config = table1_config().with_error_rate(1e-3)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        assert sum(result.unit_mix.values()) == result.instructions_executed
        assert result.instructions_executed > result.instructions
