"""Tests for repro.parallel: fan-out isolation, ordering, determinism.

The contract under test: ``run_fanout`` returns one outcome per payload
in payload order regardless of completion order; a worker that raises,
dies or hangs costs exactly its own slot; ``parallel_map(jobs=1)`` is
the serial reference path and any ``jobs`` width reproduces it
bit-identically; ``derive_seed`` is a pure function of its inputs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import (
    FanoutError,
    FanoutOutcome,
    derive_seed,
    parallel_map,
    resolve_jobs,
    run_fanout,
)

# Workers must be importable module-level callables (they are pickled).


def _square(value):
    return value * value


def _slow_square(value):
    time.sleep(0.2 * value)
    return value * value


def _misbehave(mode):
    if mode == "error":
        raise RuntimeError("worker error hook")
    if mode == "die":
        os._exit(23)
    if mode == "hang":
        time.sleep(3600)
    return "ok"


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_auto_is_bounded(self):
        auto = resolve_jobs(0)
        assert 1 <= auto <= 8
        assert resolve_jobs(-3) == auto


class TestRunFanout:
    def test_results_in_payload_order(self):
        # Larger payloads take longer, so completion order is reversed
        # relative to payload order; results must not be.
        outcomes = run_fanout(_slow_square, [3, 2, 1, 0], jobs=4)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [9, 4, 1, 0]
        assert all(o.ok for o in outcomes)

    def test_error_worker_ships_traceback(self):
        outcomes = run_fanout(_misbehave, ["error"], jobs=1)
        assert outcomes[0].status == "error"
        assert not outcomes[0].ok
        assert "worker error hook" in (outcomes[0].traceback or "")

    def test_dead_worker_reports_exit_code(self):
        outcomes = run_fanout(_misbehave, ["die"], jobs=1)
        assert outcomes[0].status == "died"
        assert outcomes[0].exitcode == 23

    def test_timeout_worker_is_terminated(self):
        started = time.monotonic()
        outcomes = run_fanout(_misbehave, ["hang"], jobs=1, timeout_s=1.0)
        assert outcomes[0].status == "timeout"
        assert time.monotonic() - started < 30.0

    def test_failures_cost_only_their_slot(self):
        payloads = ["keep", "error", "die", "keep"]
        outcomes = run_fanout(_misbehave, payloads, jobs=2)
        assert [o.status for o in outcomes] == ["ok", "error", "died", "ok"]
        assert outcomes[0].value == "ok"
        assert outcomes[3].value == "ok"

    def test_on_outcome_streams_every_payload(self):
        seen: "list[FanoutOutcome]" = []
        run_fanout(_square, [1, 2, 3], jobs=3, on_outcome=seen.append)
        assert sorted(o.index for o in seen) == [0, 1, 2]

    def test_empty_payloads(self):
        assert run_fanout(_square, [], jobs=4) == []


class TestParallelMap:
    def test_serial_path_runs_in_process(self):
        # jobs=1 must not spawn: an in-process side effect proves it.
        marker = []

        def worker(value):  # closures are fine serially (never pickled)
            marker.append(value)
            return value + 1

        assert parallel_map(worker, [1, 2], jobs=1) == [2, 3]
        assert marker == [1, 2]

    def test_matches_serial(self):
        serial = parallel_map(_square, list(range(10)), jobs=1)
        fanned = parallel_map(_square, list(range(10)), jobs=4)
        assert fanned == serial

    def test_raises_on_worker_error(self):
        with pytest.raises(FanoutError, match="error"):
            parallel_map(_misbehave, ["error"], jobs=2)

    def test_raises_on_worker_death(self):
        with pytest.raises(FanoutError, match="died"):
            parallel_map(_misbehave, ["die"], jobs=2)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(12345, "bzip2", "paradox") == derive_seed(
            12345, "bzip2", "paradox"
        )

    def test_sensitive_to_every_component(self):
        base = derive_seed(12345, "bzip2", "paradox")
        assert derive_seed(12346, "bzip2", "paradox") != base
        assert derive_seed(12345, "gcc", "paradox") != base
        assert derive_seed(12345, "bzip2", "baseline") != base

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_31_bit_range(self):
        for key in range(50):
            seed = derive_seed(key, "workload", key)
            assert 0 <= seed < 2**31

    def test_survives_subprocess(self):
        # The whole point vs hash(): identical across processes.
        [remote] = parallel_map(_derive_remote, [(777, "milc", "paradox")], jobs=2)
        assert remote == derive_seed(777, "milc", "paradox")


def _derive_remote(key):
    return derive_seed(*key)


class TestSuiteBitIdentity:
    @pytest.fixture(scope="class")
    def serial_runs(self):
        from repro.experiments.spec_runs import run_spec_suite

        return run_spec_suite(
            iterations=4, names=["bzip2"], seed=99, systems=("baseline", "paradox")
        )

    def test_jobs2_matches_serial(self, serial_runs):
        from repro.experiments.spec_runs import run_spec_suite

        fanned = run_spec_suite(
            iterations=4,
            names=["bzip2"],
            seed=99,
            systems=("baseline", "paradox"),
            jobs=2,
        )
        for system in ("baseline", "paradox"):
            mine = fanned.by_system(system)["bzip2"]
            ref = serial_runs.by_system(system)["bzip2"]
            assert mine.wall_ns == ref.wall_ns
            assert mine.instructions == ref.instructions
            assert len(mine.recoveries) == len(ref.recoveries)
            assert mine.program_output == ref.program_output

    def test_spread_seeds_stable_across_widths(self):
        from repro.experiments.spec_runs import run_spec_suite

        kwargs = dict(
            iterations=4, names=["bzip2"], seed=5, systems=("paradox",),
            spread_seeds=True,
        )
        serial = run_spec_suite(**kwargs)
        fanned = run_spec_suite(jobs=2, **kwargs)
        assert (
            serial.paradox["bzip2"].wall_ns == fanned.paradox["bzip2"].wall_ns
        )

    def test_build_suite_tasks_rejects_unknown_system(self):
        from repro.experiments.spec_runs import build_suite_tasks

        with pytest.raises(ValueError, match="unknown systems"):
            build_suite_tasks(["bzip2"], ["warp-drive"], 4, 1)

    def test_spread_seeds_differ_per_run(self):
        from repro.experiments.spec_runs import build_suite_tasks

        tasks = build_suite_tasks(
            ["bzip2", "gcc"], ["baseline", "paradox"], 4, 1, spread_seeds=True
        )
        seeds = {task.run_seed for task in tasks}
        assert len(seeds) == len(tasks)
        # The workload build seed stays shared: every system must
        # simulate the same program.
        assert {task.build_seed for task in tasks} == {1}
