"""External-state syscalls: check-before-proceed semantics (section II-B)."""

import pytest

from repro.config import table1_config
from repro.core import BaselineSystem, ParaDoxSystem, ParaMedicSystem
from repro.isa import ProgramBuilder, Syscall
from repro.lslog import SegmentCloseReason
from repro.workloads import Workload, golden_run


def external_workload(writes=4, work_per_write=400):
    """Compute, then WRITE_EXTERNAL, repeatedly."""
    b = ProgramBuilder("external")
    b.movi(9, writes)
    b.movi(1, 0)
    b.label("outer")
    b.movi(4, work_per_write)
    b.label("work")
    b.addi(1, 1, 3)
    b.subi(4, 4, 1)
    b.cbnz(4, "work")
    b.syscall(Syscall.WRITE_EXTERNAL)
    b.subi(9, 9, 1)
    b.cbnz(9, "outer")
    b.halt()
    return Workload(
        name="external",
        program=b.build(),
        max_instructions=writes * (work_per_write * 3 + 8) + 16,
    )


class TestFunctionalSemantics:
    def test_external_write_lands_in_output(self):
        workload = external_workload(writes=2, work_per_write=10)
        golden = golden_run(workload)
        assert len(golden.output) == 2
        assert all(text.startswith("ext:") for _, text in golden.output)

    def test_value_is_x1(self):
        workload = external_workload(writes=1, work_per_write=10)
        golden = golden_run(workload)
        assert golden.output[0][1] == "ext:30"  # 10 iterations x +3


class TestEngineSemantics:
    def test_flushes_recorded_with_timestamps(self):
        workload = external_workload()
        result = ParaDoxSystem().run(workload)
        assert len(result.external_flushes) == 4
        times = [t for t, _ in result.external_flushes]
        assert times == sorted(times)
        assert all(text.startswith("ext:") for _, text in result.external_flushes)

    def test_segment_closed_with_external_reason(self):
        workload = external_workload()
        result = ParaDoxSystem().run(workload)
        assert result.close_reasons.get(SegmentCloseReason.EXTERNAL, 0) >= 4

    def test_external_ops_cost_checker_wait(self):
        """Draining checks before each write is a real stall."""
        workload = external_workload()
        result = ParaMedicSystem().run(workload)
        assert result.stalls.checker_wait_ns > 0

    def test_external_slower_than_buffered_output(self):
        """The same computation with rollbackable prints runs faster."""
        external = external_workload()

        b = ProgramBuilder("buffered")
        b.movi(9, 4).movi(1, 0)
        b.label("outer")
        b.movi(4, 400)
        b.label("work")
        b.addi(1, 1, 3).subi(4, 4, 1).cbnz(4, "work")
        b.syscall(Syscall.PRINT_INT)
        b.subi(9, 9, 1).cbnz(9, "outer")
        b.halt()
        buffered = Workload("buffered", b.build(), max_instructions=10_000)

        ext_result = ParaDoxSystem().run(external)
        buf_result = ParaDoxSystem().run(buffered)
        assert ext_result.wall_ns > buf_result.wall_ns

    def test_baseline_ignores_external_machinery(self):
        workload = external_workload(writes=2)
        result = BaselineSystem().run(workload)
        assert result.external_flushes == []  # no checking, no flush log
        assert len(result.program_output) == 2


class TestExternalUnderErrors:
    @pytest.mark.parametrize("rate", [5e-4, 2e-3])
    def test_flushed_values_always_correct(self, rate):
        """The whole point: externally visible values must be verified.

        Every flushed value must equal the golden value even under heavy
        checker-fault injection, because all computation feeding it was
        checked before the write was allowed to proceed."""
        workload = external_workload()
        golden = golden_run(workload)
        golden_texts = [text for _, text in golden.output]
        config = table1_config().with_error_rate(rate)
        result = ParaDoxSystem(config=config).run(workload)
        assert [text for _, text in result.external_flushes] == golden_texts

    def test_flush_count_never_duplicated_by_rollback(self):
        """A rollback must never replay an already-performed external
        write (it was only executed after full verification)."""
        workload = external_workload()
        config = table1_config().with_error_rate(2e-3)
        result = ParaMedicSystem(config=config).run(workload)
        assert result.errors_detected > 0
        assert len(result.external_flushes) == 4
