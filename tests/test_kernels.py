"""Kernel workloads verified against independent references."""

import numpy as np
import pytest

from repro.config import table1_config
from repro.core import ParaDoxSystem, ParaMedicSystem
from repro.workloads import (
    build_crc32,
    build_matmul,
    build_quicksort,
    crc32_reference,
    golden_run,
    matmul_reference,
    quicksort_reference,
)
from repro.workloads.kernels import MATRIX_C, SORT_BASE


class TestMatmul:
    def test_matches_numpy(self):
        n = 8
        workload = build_matmul(n=n, seed=5)
        golden = golden_run(workload)
        assert golden.state.halted
        result = np.array(golden.memory.read_floats(MATRIX_C, n * n)).reshape(n, n)
        assert np.allclose(result, matmul_reference(n=n, seed=5), atol=1e-12)

    def test_fp_heavy(self):
        workload = build_matmul(n=4)
        from repro.isa import FunctionalUnit

        fp_ops = sum(
            1
            for instr in workload.program.instructions
            if instr.unit in (FunctionalUnit.FP_ALU, FunctionalUnit.FP_MUL)
        )
        assert fp_ops >= 3

    def test_recovers_under_faults(self):
        workload = build_matmul(n=6, seed=9)
        golden = golden_run(workload)
        config = table1_config().with_error_rate(1e-3)
        engine = ParaDoxSystem(config=config).engine(workload)
        result = engine.run(workload.max_instructions)
        assert engine.memory == golden.memory
        del result


class TestQuicksort:
    @pytest.mark.parametrize("elements,seed", [(16, 1), (64, 23), (100, 7)])
    def test_sorts_correctly(self, elements, seed):
        workload = build_quicksort(elements=elements, seed=seed)
        golden = golden_run(workload)
        assert golden.state.halted
        sorted_memory = golden.memory.read_words(SORT_BASE, elements)
        assert sorted_memory == quicksort_reference(elements=elements, seed=seed)

    def test_prints_minimum(self):
        workload = build_quicksort(elements=32, seed=4)
        golden = golden_run(workload)
        expected = quicksort_reference(elements=32, seed=4)[0]
        assert golden.output[0][1] == str(expected)

    def test_recovers_under_faults(self):
        """Quicksort overwrites live data constantly: rollback torture."""
        workload = build_quicksort(elements=48, seed=11)
        golden = golden_run(workload)
        config = table1_config().with_error_rate(1e-3)
        engine = ParaMedicSystem(config=config).engine(workload)
        result = engine.run(workload.max_instructions)
        assert result.errors_detected > 0
        assert engine.memory == golden.memory

    def test_branchy(self):
        """Quicksort mispredicts much more than a streaming kernel."""
        from repro.core import BaselineSystem

        workload = build_quicksort(elements=128, seed=2)
        engine = BaselineSystem().engine(workload)
        engine.run(workload.max_instructions)
        assert engine.predictor.stats.mispredict_rate > 0.02


class TestCrc32:
    def test_matches_reference(self):
        workload = build_crc32(length_words=16, seed=3)
        golden = golden_run(workload)
        assert golden.state.halted
        assert golden.output[0][1] == str(crc32_reference(length_words=16, seed=3))

    def test_serial_chain_is_low_ipc(self):
        from repro.core import BaselineSystem
        from repro.config import table1_config as cfg

        workload = build_crc32(length_words=16)
        result = BaselineSystem().run(workload)
        cycles = result.wall_ns / cfg().main_core.cycle_ns
        assert result.instructions / cycles < 2.0  # dependency-bound

    def test_recovers_under_faults(self):
        workload = build_crc32(length_words=12, seed=8)
        golden = golden_run(workload)
        config = table1_config().with_error_rate(2e-3)
        result = ParaDoxSystem(config=config).run(workload)
        assert result.program_output == golden.output
