"""Reference-ISS cross-checks and the condition-code bignum oracle.

The first half proves the golden model agrees with :func:`golden_run`
(the production ``Executor`` over a plain memory image) on every
built-in workload.  The second half cross-checks ``_flags_from_sub``
and all six ``_CONDITIONS`` lambdas against a Python-bignum model that
is formulated purely in terms of signed/unsigned comparisons — no
two's-complement bit fiddling — over boundary operands and hypothesis
pairs, plus the FCMP unordered-NaN encoding against every conditional
branch.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import WORKLOAD_BUILDERS
from repro.isa import (
    ArchState,
    Executor,
    MASK64,
    MemoryImage,
    Opcode,
    ProgramBuilder,
    to_signed,
)
from repro.isa.executor import _flags_from_sub
from repro.oracle import ReferenceISS
from repro.workloads.base import golden_run

#: Operands on the corner cases of 64-bit two's-complement arithmetic.
BOUNDARY = [
    0,
    1,
    2,
    (1 << 63) - 1,
    1 << 63,
    (1 << 63) + 1,
    MASK64 - 1,
    MASK64,
    1 << 62,
    0x5555_5555_5555_5555,
]

WORD64 = st.integers(min_value=0, max_value=MASK64)


def assert_reference_matches(ref: ReferenceISS, state: ArchState, memory) -> None:
    assert ref.halted == state.halted
    assert ref.pc == state.pc
    assert ref.instret == state.instret
    assert ref.x == state.regs.x
    assert ref.f == state.regs.f
    assert ref.flags == state.regs.flags
    assert ref.output == state.output
    mine = {a: v for a, v in memory.words.items() if v}
    assert ref.memory_words() == mine


class TestReferenceAgainstGoldenRun:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_BUILDERS))
    def test_full_state_agreement(self, name):
        workload = WORKLOAD_BUILDERS[name](0.5)
        golden = golden_run(workload)
        ref = ReferenceISS(workload.program, initial_words=workload.initial_words)
        retired = ref.run(workload.max_instructions)
        assert retired == golden.instructions
        assert_reference_matches(ref, golden.state, golden.memory)

    def test_reference_is_deterministic(self):
        workload = WORKLOAD_BUILDERS["crc32"](0.5)
        runs = []
        for _ in range(2):
            ref = ReferenceISS(workload.program, initial_words=workload.initial_words)
            ref.run(workload.max_instructions)
            runs.append((list(ref.x), list(ref.f), ref.flags, ref.output))
        assert runs[0] == runs[1]


def bignum_flags(a: int, b: int):
    """NZCV of ``a - b`` stated as pure integer comparisons."""
    sa, sb = to_signed(a), to_signed(b)
    diff = sa - sb
    n = to_signed((a - b) & MASK64) < 0
    z = a == b
    c = a >= b  # no unsigned borrow
    v = not (-(1 << 63) <= diff < (1 << 63))
    return n, z, c, v


#: Signed-comparison truth each conditional branch must encode.
SIGNED_PREDICATES = {
    Opcode.BEQ: lambda sa, sb: sa == sb,
    Opcode.BNE: lambda sa, sb: sa != sb,
    Opcode.BLT: lambda sa, sb: sa < sb,
    Opcode.BGE: lambda sa, sb: sa >= sb,
    Opcode.BGT: lambda sa, sb: sa > sb,
    Opcode.BLE: lambda sa, sb: sa <= sb,
}


class TestConditionCodeOracle:
    @pytest.mark.parametrize("a", BOUNDARY)
    @pytest.mark.parametrize("b", BOUNDARY)
    def test_flags_boundary_operands(self, a, b):
        assert _flags_from_sub(a, b) == bignum_flags(a, b)

    @settings(max_examples=300, deadline=None)
    @given(a=WORD64, b=WORD64)
    def test_flags_random_operands(self, a, b):
        assert _flags_from_sub(a, b) == bignum_flags(a, b)

    @pytest.mark.parametrize("a", BOUNDARY)
    @pytest.mark.parametrize("b", BOUNDARY)
    def test_conditions_encode_signed_comparison(self, a, b):
        n, z, c, v = _flags_from_sub(a, b)
        sa, sb = to_signed(a), to_signed(b)
        for opcode, predicate in SIGNED_PREDICATES.items():
            taken = Executor._CONDITIONS[opcode](n, z, c, v)
            assert taken == predicate(sa, sb), (opcode, a, b)

    @settings(max_examples=300, deadline=None)
    @given(a=WORD64, b=WORD64)
    def test_conditions_random_operands(self, a, b):
        n, z, c, v = _flags_from_sub(a, b)
        sa, sb = to_signed(a), to_signed(b)
        for opcode, predicate in SIGNED_PREDICATES.items():
            assert Executor._CONDITIONS[opcode](n, z, c, v) == predicate(sa, sb)


def _run_fcmp_branch(a: float, b: float, branch: str):
    """Execute fcmp a, b; <branch> on executor and reference; return taken."""
    builder = ProgramBuilder(name=f"fcmp-{branch}")
    builder.fmovi(0, a).fmovi(1, b).fcmp(0, 1)
    getattr(builder, branch)("taken")
    builder.movi(2, 1).halt()
    builder.label("taken").movi(2, 2).halt()
    program = builder.build()

    state = ArchState()
    Executor(program, state, MemoryImage()).run(100)
    ref = ReferenceISS(program)
    ref.run(100)
    assert ref.x[2] == state.regs.x[2], (a, b, branch)
    assert ref.flags == state.regs.flags, (a, b, branch)
    return state.regs.x[2] == 2, state.regs.flags


NAN = float("nan")


class TestFcmpUnordered:
    @pytest.mark.parametrize(
        "a,b",
        [(NAN, 1.0), (1.0, NAN), (NAN, NAN), (NAN, float("inf"))],
    )
    def test_unordered_flag_encoding(self, a, b):
        # Unordered comparisons set N=0 Z=0 C=1 V=1 (0b0011).
        _, flags = _run_fcmp_branch(a, b, "beq")
        assert flags == 0b0011

    @pytest.mark.parametrize(
        "branch,expect_taken",
        [
            ("beq", False),
            ("bne", True),
            ("blt", True),
            ("bge", False),
            ("bgt", False),
            ("ble", True),
        ],
    )
    def test_unordered_behaves_as_less_than(self, branch, expect_taken):
        # With N=0 V=1 the branch matrix resolves unordered exactly like
        # "less than" — the intentional semantic documented in
        # docs/ORACLE.md.
        taken, _ = _run_fcmp_branch(NAN, 1.0, branch)
        assert taken == expect_taken

    @pytest.mark.parametrize(
        "a,b,relation",
        [(1.0, 2.0, "lt"), (2.0, 1.0, "gt"), (1.5, 1.5, "eq"), (-0.0, 0.0, "eq")],
    )
    def test_ordered_comparisons_unaffected(self, a, b, relation):
        taken_lt, _ = _run_fcmp_branch(a, b, "blt")
        taken_eq, _ = _run_fcmp_branch(a, b, "beq")
        taken_gt, _ = _run_fcmp_branch(a, b, "bgt")
        assert taken_lt == (relation == "lt")
        assert taken_eq == (relation == "eq")
        assert taken_gt == (relation == "gt")


class TestFdivIeeeZeroSemantics:
    """Signed-zero division: the bug class the fuzzer first caught."""

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (1.0, 0.0, float("inf")),
            (1.0, -0.0, float("-inf")),
            (-1.0, 0.0, float("-inf")),
            (-1.0, -0.0, float("inf")),
            (float("inf"), -0.0, float("-inf")),
        ],
    )
    def test_directed_infinities(self, a, b, expected):
        builder = ProgramBuilder(name="fdiv")
        builder.fmovi(0, a).fmovi(1, b).fdiv(2, 0, 1).halt()
        program = builder.build()
        state = ArchState()
        Executor(program, state, MemoryImage()).run(10)
        assert state.regs.read_f(2) == expected
        ref = ReferenceISS(program)
        ref.run(10)
        assert ref.f[2] == state.regs.f[2]

    @pytest.mark.parametrize("a", [0.0, -0.0, NAN])
    @pytest.mark.parametrize("b", [0.0, -0.0])
    def test_zero_or_nan_over_zero_is_nan(self, a, b):
        builder = ProgramBuilder(name="fdiv-nan")
        builder.fmovi(0, a).fmovi(1, b).fdiv(2, 0, 1).halt()
        program = builder.build()
        state = ArchState()
        Executor(program, state, MemoryImage()).run(10)
        assert math.isnan(state.regs.read_f(2))
        ref = ReferenceISS(program)
        ref.run(10)
        assert ref.f[2] == state.regs.f[2]
