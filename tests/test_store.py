"""Campaign store: run keys, schema migration, round-trip, merge."""

import json
import os
import sqlite3

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text
from repro.store import (
    SCHEMA_VERSION,
    CampaignStore,
    SchemaTooNew,
    StoreError,
    campaign_key,
    canonical_cell,
    migrate,
    parse_shard,
    run_key,
    shard_of,
)

PAYLOAD = {
    "run_id": 7,
    "workload": "bitcount",
    "scale": 0.4,
    "seed": 3,
    "rate": 1e-4,
    "model": "transient",
    "dvs": True,
    "initial_margin": 0.2,
    "chip_seed": 0,
    "voltage": None,
    "tracing": False,
    "hook": None,
}

SPEC = {
    "workload": "bitcount",
    "scale": 0.4,
    "seeds": 2,
    "first_seed": 0,
    "rates": [1e-4],
    "models": ["transient"],
    "dvs": True,
    "initial_margin": 0.2,
    "chip_seeds": 1,
    "first_chip_seed": 0,
    "voltage": None,
    "timeout_s": 60.0,
    "workers": 4,
    "tracing": False,
}


def record_dict(run_id=0, seed=0, run_class="masked", **overrides):
    record = {
        "run_id": run_id,
        "seed": seed,
        "rate": 1e-4,
        "model": "transient",
        "workload": "bitcount",
        "run_class": run_class,
        "chip_seed": 0,
        "detail": "golden match",
        "outcome": "completed",
        "recoveries": 0,
        "faults_injected": 1,
        "instructions": 1000,
        "quarantined": [],
        "escalations": {},
        "duration_s": 0.25,
        "traceback": None,
        "metrics": None,
    }
    record.update(overrides)
    return record


class TestRunKeys:
    def test_golden_hash_pinned(self):
        # The canonicalisation contract: this hash may only change with
        # a deliberate CODE_IDENTITY bump (which orphans stored results).
        assert run_key(PAYLOAD) == (
            "a596ccf11f216cc5ccbb1d00fab8e53b0a89e57ade695dbde1f172152e532b1f"
        )

    def test_campaign_golden_hash_pinned(self):
        assert campaign_key(SPEC) == (
            "d9459722090bcec52fce8d008013d6c2a27cfb6dc9e395e965e0dd41f32ee9a3"
        )

    def test_run_id_is_positional_not_identity(self):
        moved = dict(PAYLOAD, run_id=99)
        assert run_key(moved) == run_key(PAYLOAD)

    def test_absent_optionals_hash_as_null(self):
        without = {
            k: v for k, v in PAYLOAD.items() if k not in ("voltage", "hook")
        }
        assert run_key(without) == run_key(PAYLOAD)

    def test_every_cell_field_changes_the_key(self):
        for name, value in [
            ("workload", "stream"),
            ("seed", 4),
            ("rate", 2e-4),
            ("model", "burst"),
            ("dvs", False),
            ("chip_seed", 1),
            ("voltage", 0.8),
            ("tracing", True),
            ("hook", "crash"),
        ]:
            assert run_key(dict(PAYLOAD, **{name: value})) != run_key(PAYLOAD)

    def test_canonical_cell_normalises_numerics(self):
        cell = canonical_cell(dict(PAYLOAD, seed=3.0, rate="1e-4"))
        assert cell["seed"] == 3 and isinstance(cell["seed"], int)
        assert cell["rate"] == 1e-4 and isinstance(cell["rate"], float)

    def test_execution_only_fields_do_not_change_campaign(self):
        other = dict(SPEC, workers=1, timeout_s=5.0)
        assert campaign_key(other) == campaign_key(SPEC)

    def test_grid_fields_do_change_campaign(self):
        assert campaign_key(dict(SPEC, seeds=3)) != campaign_key(SPEC)


class TestSharding:
    def test_shards_partition_the_grid(self):
        keys = [run_key(dict(PAYLOAD, seed=seed)) for seed in range(64)]
        for shards in (1, 2, 3, 5):
            buckets = [shard_of(key, shards) for key in keys]
            assert all(0 <= bucket < shards for bucket in buckets)
            # Disjoint and complete: each key lands in exactly one shard.
            assert sorted(
                key for k in range(shards)
                for key, bucket in zip(keys, buckets)
                if bucket == k
            ) == sorted(keys)

    def test_shard_of_is_deterministic(self):
        key = run_key(PAYLOAD)
        assert shard_of(key, 4) == shard_of(key, 4)

    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard("1/1") == (1, 1)
        for bad in ("0/4", "5/4", "2", "a/b", "-1/4"):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestStoreRoundTrip:
    def test_record_round_trip_with_telemetry(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        metrics = {"counters": {"instructions": 1000}}
        trace = [{"kind": "segment_start", "ts_ns": 1}]
        with CampaignStore(path) as store:
            store.register_campaign("c1", SPEC, [("k1", 0, PAYLOAD)])
            store.record_run(
                "c1",
                "k1",
                record_dict(metrics=metrics, trace=trace),
                metrics=metrics,
                trace=trace,
                voltage=0.85,
            )
        with CampaignStore(path) as store:
            record = store.load_record("k1")
            assert record["run_class"] == "masked"
            assert record["metrics"] == metrics
            assert record["trace"] == trace
            # Telemetry lives in its own tables, not in record_json.
            raw = store._conn.execute(
                "SELECT record_json, voltage FROM run_records"
            ).fetchone()
            assert "metrics" not in json.loads(raw["record_json"])
            assert raw["voltage"] == 0.85

    def test_wal_mode_and_version(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            assert store.journal_mode() == "wal"
            assert store.version == SCHEMA_VERSION

    def test_registration_is_idempotent(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            cells = [("k1", 0, PAYLOAD), ("k2", 1, dict(PAYLOAD, seed=4))]
            store.register_campaign("c1", SPEC, cells)
            store.record_run("c1", "k1", record_dict())
            store.register_campaign("c1", SPEC, cells)  # relaunch
            assert store.completed_keys("c1") == {"k1"}
            assert store.pending_cells("c1") == [("k2", 1)]

    def test_counts_and_queries(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            store.register_campaign(
                "c1", SPEC, [("k1", 0, PAYLOAD), ("k2", 1, PAYLOAD)]
            )
            store.record_run("c1", "k1", record_dict(run_id=0, seed=0))
            store.record_run(
                "c1", "k2", record_dict(run_id=1, seed=1, run_class="sdc")
            )
            assert store.counts("c1") == {"masked": 1, "sdc": 1}
            assert [
                r["run_id"] for r in store.query_records("c1", run_class="sdc")
            ] == [1]
            assert len(store.query_records("c1", limit=1)) == 1
            [summary] = store.list_campaigns()
            assert summary["recorded"] == 2

    def test_load_records_in_run_id_order(self, tmp_path):
        with CampaignStore(str(tmp_path / "s.sqlite")) as store:
            store.register_campaign(
                "c1", SPEC, [("k9", 9, PAYLOAD), ("k0", 0, PAYLOAD)]
            )
            store.record_run("c1", "k9", record_dict(run_id=9))
            store.record_run("c1", "k0", record_dict(run_id=0))
            assert [r["run_id"] for r in store.load_records("c1")] == [0, 9]


class TestMigration:
    def build_v1(self, path):
        conn = sqlite3.connect(path)
        migrate(conn, upto=1)
        with conn:
            conn.execute(
                "INSERT INTO campaigns "
                "(campaign_key, spec_json, created_at, total_cells) "
                "VALUES ('c1', '{}', 't', 1)"
            )
            conn.execute(
                "INSERT INTO run_records (run_key, campaign_key, run_id,"
                " run_class, seed, rate, model, workload, chip_seed, outcome,"
                " detail, recoveries, faults_injected, instructions,"
                " duration_s, record_json, recorded_at) VALUES "
                "('k1', 'c1', 0, 'masked', 0, 1e-4, 'transient', 'bitcount',"
                " 0, 'completed', '', 0, 1, 1000, 0.1, '{}', 't')"
            )
        conn.close()

    def test_v1_store_upgrades_in_place_with_data(self, tmp_path):
        path = str(tmp_path / "old.sqlite")
        self.build_v1(path)
        with CampaignStore(path) as store:  # opening migrates
            assert store.version == SCHEMA_VERSION
            record = store.load_record("k1")
            assert record is not None
            # v2 additions exist: voltage column (NULL for old rows)...
            row = store._conn.execute(
                "SELECT voltage FROM run_records WHERE run_key='k1'"
            ).fetchone()
            assert row["voltage"] is None
            # ...and the artifacts table.
            store._conn.execute("SELECT COUNT(*) FROM artifacts")

    def test_future_store_is_refused(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaTooNew):
            CampaignStore(path)


class TestMerge:
    def make_store(self, path, campaign, runs):
        with CampaignStore(path) as store:
            # The full grid is registered everywhere; only this shard's
            # runs are recorded (mirrors ``campaign --shard``).
            grid = [("k0", 0, PAYLOAD), ("k1", 1, PAYLOAD), ("k2", 2, PAYLOAD)]
            store.register_campaign(campaign, SPEC, grid)
            for run_id, key in runs:
                store.record_run(campaign, key, record_dict(run_id=run_id))

    def test_merge_reassembles_shards(self, tmp_path):
        a, b = str(tmp_path / "a.sqlite"), str(tmp_path / "b.sqlite")
        dest = str(tmp_path / "dest.sqlite")
        self.make_store(a, "c1", [(0, "k0"), (1, "k1")])
        self.make_store(b, "c1", [(2, "k2")])
        with CampaignStore(dest) as store:
            added_a = store.merge_from(a)
            added_b = store.merge_from(b)
            assert added_a["run_records"] == 2
            assert added_b["run_records"] == 1
            assert store.recorded_count("c1") == 3
            # Idempotent: merging again adds nothing.
            assert sum(store.merge_from(a).values()) == 0

    def test_merge_into_self_is_refused(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with CampaignStore(path) as store:
            with pytest.raises(StoreError):
                store.merge_from(path)


class TestAtomicWrites:
    def test_failed_serialisation_leaves_no_file(self, tmp_path):
        path = tmp_path / "out.json"
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # no temp droppings either

    def test_replace_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(str(path), {"v": 1})
        atomic_write_json(str(path), {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_write_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "first")
        with pytest.raises(TypeError):
            atomic_write_text(str(path), None)  # not a str
        assert path.read_text() == "first"
