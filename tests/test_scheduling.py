"""Checker pool scheduling: round-robin vs lowest-free-ID, gating stats."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CheckerConfig
from repro.cores import CheckerCore
from repro.isa import ProgramBuilder
from repro.scheduling import CheckerPool, SchedulingPolicy


def make_pool(policy, count=4, boot_offset=0):
    program = ProgramBuilder("p").halt().build()
    cores = [CheckerCore(i, CheckerConfig(count=count), program) for i in range(count)]
    return CheckerPool(cores, policy, boot_offset=boot_offset)


class TestLowestFreeId:
    def test_prefers_lowest_free(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        core, start = pool.select(0.0)
        assert core.core_id == 0 and start == 0.0
        pool.dispatch(core, 1, 0.0, 100.0)
        core2, _ = pool.select(10.0)
        assert core2.core_id == 1  # 0 busy until 100

    def test_reuses_zero_once_free(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        core, _ = pool.select(0.0)
        pool.dispatch(core, 1, 0.0, 50.0)
        core2, _ = pool.select(60.0)
        assert core2.core_id == 0

    def test_all_busy_waits_for_earliest(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID, count=2)
        pool.dispatch(pool.cores[0], 1, 0.0, 100.0)
        pool.dispatch(pool.cores[1], 2, 0.0, 60.0)
        core, start = pool.select(10.0)
        assert core.core_id == 1
        assert start == 60.0

    def test_boot_offset_rotates_ids(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID, count=4, boot_offset=2)
        core, _ = pool.select(0.0)
        assert core.core_id == 2

    def test_concentrates_on_low_ids(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID, count=8)
        now = 0.0
        for seq in range(20):
            core, start = pool.select(now)
            pool.dispatch(core, seq, max(start, now), 10.0)
            now += 30.0  # fill slower than checking: one core suffices
        rates = pool.wake_rates(now)
        assert rates[0] > 0
        assert all(rate == 0 for rate in rates[2:])


class TestRoundRobin:
    def test_cycles_through_cores(self):
        pool = make_pool(SchedulingPolicy.ROUND_ROBIN, count=4)
        ids = []
        now = 0.0
        for seq in range(4):
            core, start = pool.select(now)
            pool.dispatch(core, seq, max(start, now), 5.0)
            ids.append(core.core_id)
            now += 100.0
        assert ids == [0, 1, 2, 3]

    def test_spreads_even_when_low_ids_free(self):
        pool = make_pool(SchedulingPolicy.ROUND_ROBIN, count=4)
        now = 0.0
        for seq in range(8):
            core, start = pool.select(now)
            pool.dispatch(core, seq, max(start, now), 10.0)
            now += 50.0
        rates = pool.wake_rates(now)
        assert all(rate > 0 for rate in rates)  # everyone woke up

    def test_skips_busy_core(self):
        pool = make_pool(SchedulingPolicy.ROUND_ROBIN, count=3)
        pool.dispatch(pool.cores[0], 1, 0.0, 1000.0)
        # Pointer moved to 1; both 1 and 2 are free.
        core, _ = pool.select(0.0)
        assert core.core_id == 1
        core2, _ = pool.select(0.0)
        assert core2.core_id == 2

    def test_boot_offset_rotates_cycle(self):
        """Regression: RR must walk the boot-rotated ring, not physical IDs.

        The anti-ageing rotation says logical ID 0 is a random physical
        core; a round-robin that starts every boot at physical 0 defeats
        it (the same silicon always ages first).
        """
        pool = make_pool(SchedulingPolicy.ROUND_ROBIN, count=4, boot_offset=2)
        ids = []
        now = 0.0
        for seq in range(4):
            core, start = pool.select(now)
            pool.dispatch(core, seq, max(start, now), 5.0)
            ids.append(core.core_id)
            now += 100.0
        assert ids == [2, 3, 0, 1]

    def test_boot_offset_first_pick(self):
        pool = make_pool(SchedulingPolicy.ROUND_ROBIN, count=4, boot_offset=3)
        core, _ = pool.select(0.0)
        assert core.core_id == 3


class TestDispatchAndAbort:
    def test_dispatch_occupies(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        record = pool.dispatch(pool.cores[0], 7, 10.0, 20.0)
        assert pool.cores[0].busy_until_ns == 30.0
        assert record.segment_seq == 7

    def test_abort_reclaims_time(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        record = pool.dispatch(pool.cores[0], 1, 0.0, 100.0)
        pool.abort(record, at_ns=40.0)
        assert pool.cores[0].busy_until_ns == 40.0
        assert pool.cores[0].busy_ns_total == 40.0

    def test_abort_after_completion_is_noop(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        record = pool.dispatch(pool.cores[0], 1, 0.0, 50.0)
        pool.abort(record, at_ns=80.0)
        assert pool.cores[0].busy_until_ns == 50.0
        assert pool.cores[0].busy_ns_total == 50.0

    def test_last_core_id_tracked(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        assert pool.last_core_id is None
        pool.dispatch(pool.cores[2], 1, 0.0, 10.0)
        assert pool.last_core_id == 2

    def test_abort_before_start_cannot_rewind_earlier_dispatch(self):
        """Regression: squashing a not-yet-started check must not free
        the core below an earlier, unaborted check's end."""
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        pool.dispatch(pool.cores[0], 1, 0.0, 100.0)  # runs [0, 100)
        second = pool.dispatch(pool.cores[0], 2, 100.0, 50.0)  # [100, 150)
        pool.abort(second, at_ns=30.0)  # squash lands before it began
        # The unconditional min() rewound busy_until to 30 here, letting
        # a third check overlap the still-running first one.
        assert pool.cores[0].busy_until_ns == 100.0
        assert second.end_ns == 100.0
        assert pool.cores[0].busy_ns_total == 100.0

    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # core id
                st.floats(min_value=0.0, max_value=500.0),  # start
                st.floats(min_value=1.0, max_value=200.0),  # duration
                st.booleans(),  # abort it?
                st.floats(min_value=0.0, max_value=800.0),  # abort time
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_abort_invariants_hold(self, ops):
        """After any dispatch/abort interleaving, each core's
        ``busy_until_ns`` equals the max end of its remaining records and
        its ``busy_ns_total`` equals their summed lengths."""
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID, count=3)
        records = []
        for seq, (core_id, start, duration, do_abort, abort_at) in enumerate(ops):
            start = max(start, pool.cores[core_id].busy_until_ns)
            record = pool.dispatch(pool.cores[core_id], seq, start, duration)
            records.append(record)
            if do_abort:
                pool.abort(record, at_ns=abort_at)
        for core in pool.cores:
            mine = [r for r in records if r.core_id == core.core_id]
            if not mine:
                continue
            assert core.busy_until_ns == max(r.end_ns for r in mine)
            total = sum(r.end_ns - r.start_ns for r in mine)
            assert abs(core.busy_ns_total - total) < 1e-6
            assert core.busy_ns_total >= 0.0


class TestStatistics:
    def test_wake_rates_fraction(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        pool.dispatch(pool.cores[0], 1, 0.0, 25.0)
        rates = pool.wake_rates(100.0)
        assert rates[0] == 0.25
        assert rates[1] == 0.0

    def test_peak_concurrency(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        pool.dispatch(pool.cores[0], 1, 0.0, 100.0)
        pool.dispatch(pool.cores[1], 2, 50.0, 100.0)
        pool.dispatch(pool.cores[2], 3, 200.0, 10.0)
        assert pool.peak_concurrency() == 2

    def test_cores_ever_used(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        pool.dispatch(pool.cores[0], 1, 0.0, 10.0)
        pool.dispatch(pool.cores[3], 2, 0.0, 10.0)
        assert pool.cores_ever_used() == 2

    def test_empty_pool_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            CheckerPool([], SchedulingPolicy.ROUND_ROBIN)

    def test_earliest_free_matches_select_eligibility(self):
        """Regression: ``earliest_free_ns`` must see the same eligibility
        view as ``select`` — with an ``avoid`` set narrowing both."""
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID, count=4)
        pool.dispatch(pool.cores[0], 1, 0.0, 100.0)
        # Unconstrained: cores 1-3 are free right now.
        assert pool.earliest_free_ns() == 0.0
        # A retry avoiding every free core must wait for core 0 — and
        # the wait-time accounting must agree with the core selected.
        avoid = {1, 2, 3}
        assert pool.earliest_free_ns(avoid=avoid) == 100.0
        core, start = pool.select(10.0, avoid=avoid)
        assert core.core_id == 0
        assert start == pool.earliest_free_ns(avoid=avoid)

    def test_earliest_free_relaxes_with_select(self):
        """If ``avoid`` would empty the pool both views drop it."""
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID, count=2)
        pool.dispatch(pool.cores[0], 1, 0.0, 50.0)
        avoid = {0, 1}
        assert pool.earliest_free_ns(avoid=avoid) == 0.0
        core, start = pool.select(0.0, avoid=avoid)
        assert start == 0.0 and core.core_id == 1


class TestWakeRateClamping:
    """Wake rates are fractions of the *run*: overruns must clamp."""

    def test_overrunning_dispatch_clamps_to_run_end(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        # The check starts inside the run but finishes far beyond it;
        # raw busy/total would be 150/100 = 1.5.
        pool.dispatch(pool.cores[0], 1, 50.0, 150.0)
        rates = pool.wake_rates(100.0)
        assert rates[0] == 0.5

    def test_dispatch_entirely_after_run_end_counts_nothing(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        pool.dispatch(pool.cores[0], 1, 100.0, 50.0)
        assert pool.wake_rates(100.0)[0] == 0.0

    def test_multiple_overruns_still_bounded(self):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        now = 0.0
        for seq in range(5):
            pool.dispatch(pool.cores[0], seq, now, 40.0)
            now += 40.0
        rates = pool.wake_rates(90.0)  # run ends mid-third-check
        assert rates[0] == 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        dispatches=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # core id
                st.floats(min_value=0.0, max_value=1000.0),  # start
                st.floats(min_value=0.0, max_value=500.0),  # duration
            ),
            max_size=20,
        ),
        total_ns=st.floats(min_value=0.0, max_value=800.0),
    )
    def test_rates_always_in_unit_interval(self, dispatches, total_ns):
        pool = make_pool(SchedulingPolicy.LOWEST_FREE_ID)
        for seq, (core_id, start, duration) in enumerate(dispatches):
            pool.dispatch(pool.cores[core_id], seq, start, duration)
        for rate in pool.wake_rates(total_ns):
            assert 0.0 <= rate <= 1.0
