"""Main-core timing model: IPC effects the OoO scoreboard must show."""

from repro.config import table1_config
from repro.cores import MainCoreTiming, TournamentPredictor
from repro.isa import ArchState, Executor, MemoryImage, ProgramBuilder
from repro.memory import MemoryHierarchy


def time_program(build, max_instructions=100_000):
    """Run a builder-defined program through the timing model; return
    (cycles, instructions, timing)."""
    b = ProgramBuilder("t")
    build(b)
    program = b.build()
    config = table1_config()
    hierarchy = MemoryHierarchy(config)
    predictor = TournamentPredictor(config.branch_predictor)
    timing = MainCoreTiming(config.main_core, hierarchy, predictor)
    state = ArchState()
    executor = Executor(program, state, MemoryImage())
    retired = 0
    while not state.halted and retired < max_instructions:
        info = executor.step()
        timing.commit(info)
        retired += 1
    return timing.now, retired, timing


class TestThroughput:
    def test_independent_ops_reach_high_ipc(self):
        def build(b):
            b.movi(9, 2000)
            b.label("loop")
            for reg in (1, 2, 3, 4, 5, 6):
                b.addi(reg, reg, 1)  # six independent chains
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        cycles, retired, _ = time_program(build)
        ipc = retired / cycles
        assert ipc > 1.8  # 3-wide commit, mostly independent

    def test_dependent_chain_is_serial(self):
        def build(b):
            b.movi(9, 2000)
            b.label("loop")
            for _ in range(6):
                b.addi(1, 1, 1)  # one serial chain
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        cycles, retired, _ = time_program(build)
        ipc = retired / cycles
        assert ipc < 1.4  # bounded by the dependency chain

    def test_division_chain_much_slower(self):
        def build_div(b):
            b.movi(1, 1000).movi(2, 3).movi(9, 500)
            b.label("loop")
            b.div(1, 1, 2)
            b.orri(1, 1, 1)
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        def build_add(b):
            b.movi(1, 1000).movi(2, 3).movi(9, 500)
            b.label("loop")
            b.add(1, 1, 2)
            b.orri(1, 1, 1)
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        div_cycles, _, _ = time_program(build_div)
        add_cycles, _, _ = time_program(build_add)
        assert div_cycles > add_cycles * 3

    def test_commit_width_floor(self):
        """Even fully independent single-cycle ops can't beat 3 IPC."""

        def build(b):
            b.movi(9, 1000)
            b.label("loop")
            for reg in range(1, 8):
                b.movi(reg, reg)
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        cycles, retired, _ = time_program(build)
        assert retired / cycles <= 3.001


class TestMemoryLatency:
    def test_cache_misses_slow_pointer_chase(self):
        def build_chase(b, stride):
            # Serial dependent loads over a large region.
            b.movi(1, 0).movi(9, 400)
            b.label("loop")
            b.ldr(2, 1, 0)  # load (value is 0)
            b.addi(1, 1, stride)
            b.andi(1, 1, (1 << 20) - 1)
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        same_line_cycles, _, _ = time_program(lambda b: build_chase(b, 0))
        far_cycles, _, _ = time_program(lambda b: build_chase(b, 8192))
        assert far_cycles > same_line_cycles * 1.5

    def test_store_latency_hidden(self):
        def build_stores(b):
            b.movi(1, 0).movi(9, 500)
            b.label("loop")
            b.str_(9, 1, 0)
            b.addi(1, 1, 8)
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        cycles, retired, _ = time_program(build_stores)
        assert retired / cycles > 1.0  # stores retire into the queue


class TestBranches:
    def test_random_branches_cost_more_than_predictable(self):
        def build(b, pattern_reg_init):
            b.movi(1, pattern_reg_init).movi(9, 2000).movi(5, 0)
            b.label("loop")
            # LCG-ish scramble; branch on parity.
            b.movi(6, 2862933555777941757)
            b.mul(1, 1, 6)
            b.addi(1, 1, 3037000493)
            b.lsri(2, 1, 62 if pattern_reg_init else 0)  # degenerate when 0
            b.andi(2, 2, 1)
            b.cbnz(2, "skip")
            b.addi(5, 5, 1)
            b.label("skip")
            b.subi(9, 9, 1)
            b.cbnz(9, "loop")
            b.halt()

        random_cycles, random_retired, random_timing = time_program(
            lambda b: build(b, 12345)
        )
        # Same code but branch always taken (lsri by 0 of even value -> parity fixed).
        steady_cycles, steady_retired, _ = time_program(lambda b: build(b, 0))
        assert random_cycles / random_retired > steady_cycles / steady_retired
        assert random_timing.predictor.stats.mispredicts > 100


class TestEngineHooks:
    def test_block_commit_advances_time(self):
        def build(b):
            b.movi(1, 1).halt()

        _, _, timing = time_program(build)
        before = timing.now
        timing.block_commit(16)
        assert timing.now == before + 16
        assert timing.stats.checkpoint_blocks == 1

    def test_stall_until(self):
        def build(b):
            b.movi(1, 1).halt()

        _, _, timing = time_program(build)
        target = timing.now + 100
        stalled = timing.stall_until(target)
        assert abs(stalled - 100) < 1e-9
        assert timing.now == target
        assert timing.stall_until(target - 50) == 0  # no backwards stall

    def test_discard_inflight_preserves_now(self):
        def build(b):
            b.movi(1, 1).movi(2, 2).halt()

        _, _, timing = time_program(build)
        now = timing.now
        timing.discard_inflight()
        assert timing.now == now
