"""Pinned regressions for divergences the fuzzer found.

Each test names the seed/profile that first exposed the bug, re-runs
that exact generated case through the full three-way differential, and
pins the minimal semantic repro directly.  Keep these green forever:
they are the oracle's trophy case.
"""

import math

from repro.isa import ArchState, Executor, MemoryImage, ProgramBuilder
from repro.oracle import generate_case, run_case


class TestSeed15MixedFdivNegativeZero:
    """seed=15 profile=mixed: FDIV by -0.0 produced +inf instead of -inf.

    The executor special-cased division by zero with an unsigned
    ``float("inf")`` and lost the divisor's sign bit; IEEE 754 requires
    the sign of x/±0 to be the XOR of the operand signs.  The reference
    ISS (formulated via ``ZeroDivisionError``) disagreed at the first
    checkpoint and the shrinker cut the case to a single FP atom.
    """

    def test_seed15_mixed_diffs_clean(self):
        report = run_case(generate_case(15, "mixed"))
        assert report.ok, report.divergence.describe()

    def test_minimal_repro_negative_zero_divisor(self):
        builder = ProgramBuilder(name="fdiv-neg-zero")
        builder.fmovi(0, 1.0).fmovi(1, -0.0).fdiv(2, 0, 1).halt()
        state = ArchState()
        Executor(builder.build(), state, MemoryImage()).run(10)
        assert state.regs.read_f(2) == float("-inf")

    def test_sign_matrix(self):
        for a, b, expected in [
            (1.0, 0.0, math.inf),
            (1.0, -0.0, -math.inf),
            (-1.0, 0.0, -math.inf),
            (-1.0, -0.0, math.inf),
        ]:
            builder = ProgramBuilder(name="fdiv-signs")
            builder.fmovi(0, a).fmovi(1, b).fdiv(2, 0, 1).halt()
            state = ArchState()
            Executor(builder.build(), state, MemoryImage()).run(10)
            assert state.regs.read_f(2) == expected, (a, b)
