"""Shared checker pools (the figure 12 halving suggestion)."""

import pytest

from repro.core import ParaDoxSystem
from repro.scheduling import (
    merge_traces,
    minimum_adequate_pool,
    replay_shared_pool,
    sharing_study,
)
from repro.workloads import build_spec_workload


class TestReplayMechanics:
    def test_merge_orders_by_arrival(self):
        merged = merge_traces([[(5.0, 1.0)], [(1.0, 1.0), (9.0, 1.0)]])
        assert [t for t, _ in merged] == [1.0, 5.0, 9.0]

    def test_single_checker_serialises(self):
        report = replay_shared_pool([[(0.0, 10.0), (0.0, 10.0)]], pool_size=1)
        assert report.blocked_dispatches == 1
        assert report.total_added_delay_ns == 10.0

    def test_enough_checkers_block_nothing(self):
        report = replay_shared_pool([[(0.0, 10.0), (0.0, 10.0)]], pool_size=2)
        assert report.blocked_dispatches == 0
        assert report.total_added_delay_ns == 0.0

    def test_lowest_free_concentrates(self):
        trace = [[(float(i * 100), 10.0) for i in range(10)]]
        report = replay_shared_pool(trace, pool_size=4)
        assert report.wake_rates[0] > 0
        assert report.wake_rates[1] == 0.0  # one core suffices

    def test_blocked_fraction(self):
        report = replay_shared_pool([[(0.0, 10.0)] * 4], pool_size=2)
        assert report.blocked_fraction == pytest.approx(0.5)

    def test_empty_traces(self):
        report = replay_shared_pool([], pool_size=4)
        assert report.dispatches == 0
        assert report.blocked_fraction == 0.0

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            replay_shared_pool([], pool_size=0)

    def test_minimum_adequate_pool(self):
        # Two simultaneous 10ns jobs every 100ns need exactly 2 cores.
        traces = [
            [(float(i * 100), 10.0) for i in range(20)],
            [(float(i * 100), 10.0) for i in range(20)],
        ]
        assert minimum_adequate_pool(traces, max_blocked_fraction=0.0) == 2

    def test_minimum_adequate_pool_unreachable(self):
        with pytest.raises(ValueError):
            minimum_adequate_pool(
                [[(0.0, 10.0)] * 10], max_blocked_fraction=0.0, ceiling=5
            )


class TestPaperClaim:
    @pytest.fixture(scope="class")
    def two_core_traces(self):
        """Dispatch traces from two independent single-core runs."""
        traces = []
        for name in ("gobmk", "lbm"):
            workload = build_spec_workload(name, iterations=8)
            result = ParaDoxSystem().run(workload)
            assert result.dispatch_trace
            traces.append(result.dispatch_trace)
        return traces

    def test_sixteen_shared_checkers_suffice_for_two_cores(self, two_core_traces):
        """The halving claim: 2 main cores x 16 private checkers can share
        one 16-checker pool without (meaningfully) blocking."""
        report = replay_shared_pool(two_core_traces, pool_size=16)
        assert report.blocked_fraction <= 0.01

    def test_study_monotone_in_pool_size(self, two_core_traces):
        reports = sharing_study(two_core_traces, pool_sizes=(16, 8, 4, 2))
        blocked = [report.blocked_fraction for report in reports]
        assert blocked == sorted(blocked)

    def test_dispatch_trace_well_formed(self, two_core_traces):
        for trace in two_core_traces:
            starts = [start for start, _ in trace]
            assert starts == sorted(starts)
            assert all(duration > 0 for _, duration in trace)
