"""Shared fixtures: small cached workloads and their golden runs."""

from __future__ import annotations

import pytest

from repro.workloads import build_bitcount, build_stream, golden_run


@pytest.fixture(scope="session")
def bitcount_small():
    return build_bitcount(values=24)


@pytest.fixture(scope="session")
def bitcount_golden(bitcount_small):
    return golden_run(bitcount_small)


@pytest.fixture(scope="session")
def stream_small():
    return build_stream(elements=48)


@pytest.fixture(scope="session")
def stream_golden(stream_small):
    return golden_run(stream_small)
