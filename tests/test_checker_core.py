"""Checker-core model: replay correctness, detection, timing."""

import pytest

from repro.config import CacheConfig, CheckerConfig, table1_config
from repro.cores import CheckerCore, icache_penalty, miss_probability
from repro.cores.icache_model import L0_MISS_CYCLES
from repro.isa import ArchState, Executor, MemoryImage, ProgramBuilder, assemble
from repro.lslog import (
    DetectionChannel,
    LogSegment,
    MainMemoryPort,
    RollbackGranularity,
    SegmentCloseReason,
)
from repro.memory import UncheckedLineTracker


def fill_segment(program, instructions=None):
    """Run the whole program on a 'main core' (functional only), filling
    one big segment; return (segment, program)."""
    memory = MemoryImage()
    tracker = UncheckedLineTracker(CacheConfig(32 * 1024, 4, 2, mshrs=4))
    port = MainMemoryPort(memory, tracker, RollbackGranularity.LINE)
    state = ArchState()
    segment = LogSegment(
        seq=1,
        granularity=RollbackGranularity.LINE,
        capacity_bytes=1 << 20,
        start_state=state.snapshot(),
    )
    port.segment = segment
    executor = Executor(program, state, port)
    budget = instructions or 100_000
    while not state.halted and segment.instruction_count < budget:
        info = executor.step()
        segment.record_instruction(
            info.instruction.unit, writes_register=info.dest is not None
        )
    segment.close(state.snapshot(), SegmentCloseReason.PROGRAM_END)
    return segment


def make_checker(program):
    return CheckerCore(0, table1_config().checker, program)


SIMPLE = """
    movi x1, 64
    movi x2, 5
    str x2, [x1]
    ldr x3, [x1]
    add x4, x3, x2
    str x4, [x1, 8]
    halt
"""


class TestCleanChecking:
    def test_clean_segment_passes(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        result = make_checker(program).check_segment(segment)
        assert not result.detected
        assert result.instructions_executed == segment.instruction_count

    def test_checker_does_not_mutate_checkpoint(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        before = segment.start_state.snapshot()
        make_checker(program).check_segment(segment)
        assert segment.start_state.matches(before)

    def test_checking_unclosed_segment_rejected(self):
        program = assemble(SIMPLE)
        segment = LogSegment(
            seq=1,
            granularity=RollbackGranularity.LINE,
            capacity_bytes=1024,
            start_state=ArchState(),
        )
        with pytest.raises(ValueError):
            make_checker(program).check_segment(segment)

    def test_analytic_cycles_match_replay_for_clean_run(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        checker = make_checker(program)
        result = checker.check_segment(segment)
        assert result.checker_cycles == pytest.approx(
            checker.analytic_cycles(segment)
        )


class _Corruptor:
    """Minimal SegmentFaultHook flipping state at a chosen instruction."""

    def __init__(self, at_instruction=None, load_flip=None, store_flip=None):
        self.at = at_instruction
        self.load_flip = load_flip
        self.store_flip = store_flip

    def before_instruction(self, state, index):
        if self.at is not None and index == self.at:
            state.regs.x[2] ^= 0x10

    def after_instruction(self, state, info, index):
        pass

    def corrupt_load(self, op_index, value):
        if self.load_flip is not None and op_index == self.load_flip:
            return value ^ 1
        return value

    def corrupt_store(self, op_index, value):
        if self.store_flip is not None and op_index == self.store_flip:
            return value ^ 1
        return value


class TestDetectionChannels:
    def test_register_corruption_detected_at_store(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        result = make_checker(program).check_segment(segment, _Corruptor(at_instruction=2))
        assert result.detected
        assert result.channel in (
            DetectionChannel.STORE_COMPARISON,
            DetectionChannel.FINAL_STATE,
        )

    def test_load_log_corruption_detected(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        result = make_checker(program).check_segment(segment, _Corruptor(load_flip=0))
        assert result.detected

    def test_store_log_corruption_detected_immediately(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        result = make_checker(program).check_segment(segment, _Corruptor(store_flip=0))
        assert result.detected
        assert result.channel is DetectionChannel.STORE_COMPARISON

    def test_final_state_mismatch_on_silent_register_change(self):
        program = assemble("movi x1, 1\nmovi x2, 2\nmovi x3, 3\nhalt")
        segment = fill_segment(program)

        class LateFlip(_Corruptor):
            def before_instruction(self, state, index):
                if index == 3:  # after all movis, before halt
                    state.regs.x[9] ^= 1  # never stored: silent until final

        result = make_checker(program).check_segment(segment, LateFlip())
        assert result.detected
        assert result.channel is DetectionChannel.FINAL_STATE

    def test_pc_corruption_detected_as_exception_or_state(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)

        class PcFlip(_Corruptor):
            def before_instruction(self, state, index):
                if index == 1:
                    state.pc ^= 0x400  # wild PC

        result = make_checker(program).check_segment(segment, PcFlip())
        assert result.detected
        assert result.channel in (
            DetectionChannel.EXCEPTION,
            DetectionChannel.FINAL_STATE,
            DetectionChannel.LOG_EXHAUSTED,
        )

    def test_detection_reports_instruction_index(self):
        program = assemble(SIMPLE)
        segment = fill_segment(program)
        result = make_checker(program).check_segment(segment, _Corruptor(at_instruction=2))
        assert result.detection.instruction_index is not None
        assert 0 < result.detection.instruction_index <= segment.instruction_count

    def test_masked_fault_goes_undetected(self):
        """A flip in a register that is overwritten before any use is
        architecturally invisible — the paper's 'remain undetected' case."""
        program = assemble("movi x1, 1\nmovi x2, 2\nmovi x2, 3\nhalt")
        segment = fill_segment(program)

        class MaskedFlip(_Corruptor):
            def before_instruction(self, state, index):
                if index == 2:  # x2 about to be overwritten by movi x2, 3
                    state.regs.x[2] ^= 0xFF

        result = make_checker(program).check_segment(segment, MaskedFlip())
        assert not result.detected


class TestCheckerTiming:
    def test_cycles_scale_with_instruction_count(self):
        b = ProgramBuilder("loop")
        b.movi(9, 50).label("l").subi(9, 9, 1).cbnz(9, "l").halt()
        program = b.build()
        segment = fill_segment(program)
        result = make_checker(program).check_segment(segment)
        assert result.checker_cycles >= segment.instruction_count

    def test_divides_cost_more(self):
        def build(op):
            b = ProgramBuilder("x")
            b.movi(1, 100).movi(2, 3).movi(9, 50)
            b.label("l")
            getattr(b, op)(1, 1, 2)
            b.orri(1, 1, 1)
            b.subi(9, 9, 1).cbnz(9, "l").halt()
            return b.build()

        div_prog = build("div")
        add_prog = build("add")
        div_cycles = make_checker(div_prog).check_segment(fill_segment(div_prog)).checker_cycles
        add_cycles = make_checker(add_prog).check_segment(fill_segment(add_prog)).checker_cycles
        assert div_cycles > add_cycles * 2


class TestICacheModel:
    def test_fits_in_l0_is_free(self):
        config = CheckerConfig()
        assert icache_penalty(4096, config).cycles_per_instruction == 0.0

    def test_large_footprint_costs(self):
        config = CheckerConfig()
        penalty = icache_penalty(32 * 1024, config)
        assert penalty.cycles_per_instruction > 0
        assert penalty.l0_miss_rate > 0

    def test_monotone_in_footprint(self):
        config = CheckerConfig()
        small = icache_penalty(12 * 1024, config).cycles_per_instruction
        large = icache_penalty(64 * 1024, config).cycles_per_instruction
        assert large > small

    def test_miss_probability_bounds(self):
        assert miss_probability(0, 8192) == 0.0
        assert miss_probability(8192, 8192) == 0.0
        assert 0 < miss_probability(16384, 8192) < 1

    def test_l0_only_footprint_penalty_value(self):
        config = CheckerConfig()
        penalty = icache_penalty(16 * 1024, config)
        # p(L0 miss) = 0.5, 1/16 lines per instruction, all hit shared L1.
        expected = 0.5 / 16 * L0_MISS_CYCLES
        assert penalty.cycles_per_instruction == pytest.approx(expected)
