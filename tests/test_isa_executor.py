"""Functional executor semantics, opcode by opcode."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ArchState,
    Executor,
    HaltTrap,
    InvalidPcTrap,
    MASK64,
    MemoryAlignmentTrap,
    MemoryImage,
    ProgramBuilder,
    Syscall,
    assemble,
    to_signed,
    to_unsigned,
)


def run_program(source: str, memory=None, max_instructions=100_000):
    """Assemble and run to completion; return (state, memory)."""
    program = assemble(source)
    memory = memory if memory is not None else MemoryImage()
    state = ArchState()
    Executor(program, state, memory).run(max_instructions)
    return state, memory


def run_builder(build, memory=None, max_instructions=100_000):
    b = ProgramBuilder("t")
    build(b)
    memory = memory if memory is not None else MemoryImage()
    state = ArchState()
    Executor(b.build(), state, memory).run(max_instructions)
    return state, memory


class TestIntegerArithmetic:
    def test_add(self):
        state, _ = run_program("movi x1, 5\nmovi x2, 7\nadd x3, x1, x2\nhalt")
        assert state.regs.read_x(3) == 12

    def test_sub_wraps(self):
        state, _ = run_program("movi x1, 0\nmovi x2, 1\nsub x3, x1, x2\nhalt")
        assert state.regs.read_x(3) == MASK64

    def test_mul(self):
        state, _ = run_program("movi x1, 1000000\nmovi x2, 1000000\nmul x3, x1, x2\nhalt")
        assert state.regs.read_x(3) == 10**12

    def test_mul_wraps_64(self):
        state, _ = run_program(
            "movi x1, 0x100000000\nmovi x2, 0x100000000\nmul x3, x1, x2\nhalt"
        )
        assert state.regs.read_x(3) == 0

    def test_div_signed(self):
        state, _ = run_program("movi x1, -20\nmovi x2, 3\ndiv x3, x1, x2\nhalt")
        assert to_signed(state.regs.read_x(3)) == -6

    def test_div_by_zero_all_ones(self):
        state, _ = run_program("movi x1, 42\nmovi x2, 0\ndiv x3, x1, x2\nhalt")
        assert state.regs.read_x(3) == MASK64

    def test_rem(self):
        state, _ = run_program("movi x1, -20\nmovi x2, 3\nrem x3, x1, x2\nhalt")
        assert to_signed(state.regs.read_x(3)) == -2

    def test_rem_by_zero_returns_dividend(self):
        state, _ = run_program("movi x1, 42\nmovi x2, 0\nrem x3, x1, x2\nhalt")
        assert state.regs.read_x(3) == 42

    def test_logic_ops(self):
        state, _ = run_program(
            "movi x1, 0b1100\nmovi x2, 0b1010\n"
            "and x3, x1, x2\norr x4, x1, x2\neor x5, x1, x2\nhalt"
        )
        assert state.regs.read_x(3) == 0b1000
        assert state.regs.read_x(4) == 0b1110
        assert state.regs.read_x(5) == 0b0110

    def test_shifts(self):
        state, _ = run_program(
            "movi x1, 1\nlsli x2, x1, 10\nlsri x3, x2, 3\nmovi x4, -8\nasri x5, x4, 1\nhalt"
        )
        assert state.regs.read_x(2) == 1024
        assert state.regs.read_x(3) == 128
        assert to_signed(state.regs.read_x(5)) == -4

    def test_shift_amount_masked_to_6_bits(self):
        state, _ = run_program("movi x1, 1\nmovi x2, 65\nlsl x3, x1, x2\nhalt")
        assert state.regs.read_x(3) == 2  # 65 & 63 == 1

    def test_immediates(self):
        state, _ = run_program("movi x1, 100\naddi x2, x1, -1\nsubi x3, x1, 50\nhalt")
        assert state.regs.read_x(2) == 99
        assert state.regs.read_x(3) == 50

    def test_mov(self):
        state, _ = run_program("movi x1, 77\nmov x2, x1\nhalt")
        assert state.regs.read_x(2) == 77

    @given(st.integers(min_value=0, max_value=MASK64), st.integers(min_value=0, max_value=MASK64))
    def test_add_matches_python(self, a, b):
        def build(p):
            p.movi(1, a).movi(2, b).add(3, 1, 2).halt()

        state, _ = run_builder(build)
        assert state.regs.read_x(3) == (a + b) & MASK64

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1), st.integers(min_value=1, max_value=2**62))
    def test_div_matches_c_semantics(self, a, b):
        def build(p):
            p.movi(1, a).movi(2, b).div(3, 1, 2).rem(4, 1, 2).halt()

        state, _ = run_builder(build)
        quotient = to_signed(state.regs.read_x(3))
        remainder = to_signed(state.regs.read_x(4))
        # C-style truncation towards zero.
        expected_q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected_q = -expected_q
        assert quotient == expected_q
        assert quotient * b + remainder == a


class TestFloatingPoint:
    def test_fadd_fsub(self):
        state, _ = run_program("fmovi f1, 1.5\nfmovi f2, 0.25\nfadd f3, f1, f2\nfsub f4, f1, f2\nhalt")
        assert state.regs.read_f(3) == 1.75
        assert state.regs.read_f(4) == 1.25

    def test_fmul_fdiv(self):
        state, _ = run_program("fmovi f1, 3.0\nfmovi f2, 2.0\nfmul f3, f1, f2\nfdiv f4, f1, f2\nhalt")
        assert state.regs.read_f(3) == 6.0
        assert state.regs.read_f(4) == 1.5

    def test_fdiv_by_zero_is_inf(self):
        state, _ = run_program("fmovi f1, 1.0\nfmovi f2, 0.0\nfdiv f3, f1, f2\nhalt")
        assert state.regs.read_f(3) == float("inf")

    def test_fdiv_zero_by_zero_is_nan(self):
        state, _ = run_program("fmovi f1, 0.0\nfmovi f2, 0.0\nfdiv f3, f1, f2\nhalt")
        assert state.regs.read_f(3) != state.regs.read_f(3)

    def test_fcvt_int_to_float(self):
        state, _ = run_program("movi x1, -7\nfcvt f1, x1\nhalt")
        assert state.regs.read_f(1) == -7.0

    def test_fcvti_truncates(self):
        state, _ = run_program("fmovi f1, 2.9\nfcvti x1, f1\nfmovi f2, -2.9\nfcvti x2, f2\nhalt")
        assert state.regs.read_x(1) == 2
        assert to_signed(state.regs.read_x(2)) == -2

    def test_fcvti_nan_is_zero(self):
        state, _ = run_program(
            "fmovi f1, 0.0\nfmovi f2, 0.0\nfdiv f3, f1, f2\nfcvti x1, f3\nhalt"
        )
        assert state.regs.read_x(1) == 0

    def test_fcvti_saturates(self):
        state, _ = run_program("fmovi f1, 1e300\nfcvti x1, f1\nhalt")
        assert state.regs.read_x(1) == (1 << 63) - 1

    def test_fmov(self):
        state, _ = run_program("fmovi f1, 4.5\nfmov f2, f1\nhalt")
        assert state.regs.read_f(2) == 4.5


class TestCompareAndBranch:
    def test_beq_taken(self):
        state, _ = run_program(
            "movi x1, 5\nmovi x2, 5\ncmp x1, x2\nbeq yes\nmovi x3, 1\nhalt\nyes:\nmovi x3, 2\nhalt"
        )
        assert state.regs.read_x(3) == 2

    def test_bne_taken(self):
        state, _ = run_program(
            "movi x1, 5\nmovi x2, 6\ncmp x1, x2\nbne yes\nmovi x3, 1\nhalt\nyes:\nmovi x3, 2\nhalt"
        )
        assert state.regs.read_x(3) == 2

    @pytest.mark.parametrize(
        "a,b,op,taken",
        [
            (1, 2, "blt", True),
            (2, 1, "blt", False),
            (-1, 1, "blt", True),  # signed comparison
            (2, 2, "bge", True),
            (1, 2, "bge", False),
            (3, 2, "bgt", True),
            (2, 2, "bgt", False),
            (2, 2, "ble", True),
            (3, 2, "ble", False),
            (-5, -4, "blt", True),
        ],
    )
    def test_signed_conditions(self, a, b, op, taken):
        state, _ = run_program(
            f"movi x1, {a}\nmovi x2, {b}\ncmp x1, x2\n{op} yes\n"
            "movi x3, 1\nhalt\nyes:\nmovi x3, 2\nhalt"
        )
        assert state.regs.read_x(3) == (2 if taken else 1)

    def test_cmpi(self):
        state, _ = run_program(
            "movi x1, 10\ncmpi x1, 10\nbeq yes\nmovi x3, 1\nhalt\nyes:\nmovi x3, 2\nhalt"
        )
        assert state.regs.read_x(3) == 2

    def test_fcmp(self):
        state, _ = run_program(
            "fmovi f1, 1.0\nfmovi f2, 2.0\nfcmp f1, f2\nblt yes\n"
            "movi x3, 1\nhalt\nyes:\nmovi x3, 2\nhalt"
        )
        assert state.regs.read_x(3) == 2

    def test_cbz_cbnz(self):
        state, _ = run_program(
            "movi x1, 0\ncbz x1, a\nhalt\na:\nmovi x2, 1\ncbnz x2, b\nhalt\nb:\nmovi x3, 9\nhalt"
        )
        assert state.regs.read_x(3) == 9

    def test_loop_counts(self):
        state, _ = run_program(
            "movi x1, 0\nmovi x2, 10\nloop:\naddi x1, x1, 1\ncmp x1, x2\nblt loop\nhalt"
        )
        assert state.regs.read_x(1) == 10

    def test_uncond_branch(self):
        state, _ = run_program("b skip\nmovi x1, 1\nskip:\nmovi x2, 2\nhalt")
        assert state.regs.read_x(1) == 0
        assert state.regs.read_x(2) == 2


class TestCallsAndJumps:
    def test_jal_links(self):
        state, _ = run_program("jal x30, func\nhalt\nfunc:\nmovi x1, 5\njalr x30\n")
        assert state.regs.read_x(1) == 5
        assert state.halted

    def test_nested_calls_via_builder(self):
        def build(p):
            p.call("outer").halt()
            p.label("outer")
            p.mov(10, 30)  # save link
            p.call("inner")
            p.mov(30, 10)
            p.ret()
            p.label("inner")
            p.movi(1, 42)
            p.ret()

        state, _ = run_builder(build)
        assert state.regs.read_x(1) == 42
        assert state.halted


class TestMemoryInstructions:
    def test_store_load_roundtrip(self):
        state, mem = run_program("movi x1, 64\nmovi x2, 777\nstr x2, [x1]\nldr x3, [x1]\nhalt")
        assert state.regs.read_x(3) == 777
        assert mem.load(64) == 777

    def test_offset_addressing(self):
        state, mem = run_program("movi x1, 128\nmovi x2, 5\nstr x2, [x1, 24]\nhalt")
        assert mem.load(152) == 5

    def test_float_store_load(self):
        state, mem = run_program("movi x1, 256\nfmovi f1, 2.75\nfstr f1, [x1]\nfldr f2, [x1]\nhalt")
        assert state.regs.read_f(2) == 2.75
        assert mem.load_float(256) == 2.75

    def test_unaligned_traps(self):
        program = assemble("movi x1, 3\nldr x2, [x1]\nhalt")
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        with pytest.raises(MemoryAlignmentTrap):
            executor.run(10)


class TestControlAndSystem:
    def test_halt_sets_flag(self):
        state, _ = run_program("halt")
        assert state.halted
        assert state.instret == 1

    def test_stepping_halted_raises(self):
        program = assemble("halt")
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        executor.run(10)
        with pytest.raises(HaltTrap):
            executor.step()

    def test_invalid_pc_traps(self):
        program = assemble("movi x1, 1")  # falls off the end
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        executor.step()
        with pytest.raises(InvalidPcTrap):
            executor.step()

    def test_syscall_exit(self):
        state, _ = run_program(f"syscall {int(Syscall.EXIT)}")
        assert state.halted

    def test_syscall_print_int(self):
        # Output is stamped with instret *before* the syscall retires.
        state, _ = run_program(f"movi x1, -3\nsyscall {int(Syscall.PRINT_INT)}\nhalt")
        assert state.output == [(1, "-3")]

    def test_syscall_print_float(self):
        state, _ = run_program(f"fmovi f1, 0.5\nsyscall {int(Syscall.PRINT_FLOAT)}\nhalt")
        assert state.output == [(1, "0.5")]

    def test_syscall_instret(self):
        state, _ = run_program(f"nop\nnop\nsyscall {int(Syscall.GET_INSTRET)}\nhalt")
        assert state.regs.read_x(1) == 2

    def test_unknown_syscall_is_nop(self):
        state, _ = run_program("syscall 99\nmovi x2, 1\nhalt")
        assert state.regs.read_x(2) == 1

    def test_instret_counts(self):
        state, _ = run_program("nop\nnop\nnop\nhalt")
        assert state.instret == 4

    def test_run_budget(self):
        program = assemble("loop:\nb loop")
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        retired = executor.run(100)
        assert retired == 100
        assert not state.halted


class TestStepInfo:
    def test_reads_and_dest(self):
        program = assemble("movi x1, 1\nmovi x2, 2\nadd x3, x1, x2\nhalt")
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        executor.step()
        executor.step()
        info = executor.step()
        assert info.reads == (("x", 1), ("x", 2))
        assert info.dest == ("x", 3)
        assert info.address is None

    def test_load_info_has_address(self):
        program = assemble("movi x1, 64\nldr x2, [x1, 8]\nhalt")
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        executor.step()
        info = executor.step()
        assert info.address == 72
        assert info.instruction.is_load

    def test_branch_info_taken(self):
        program = assemble("movi x1, 0\ncbz x1, t\nnop\nt:\nhalt")
        state = ArchState()
        executor = Executor(program, state, MemoryImage())
        executor.step()
        info = executor.step()
        assert info.taken is True
        assert info.pc_after == 3


class TestPopcountProperty:
    @given(st.integers(min_value=0, max_value=MASK64))
    def test_kernighan_popcount_matches_python(self, value):
        def build(p):
            p.movi(1, value)
            p.movi(2, 0)
            p.label("loop")
            p.cbz(1, "done")
            p.subi(3, 1, 1)
            p.and_(1, 1, 3)
            p.addi(2, 2, 1)
            p.b("loop")
            p.label("done")
            p.halt()

        state, _ = run_builder(build)
        assert state.regs.read_x(2) == bin(value).count("1")
