"""Experiment harnesses: reduced-size runs must show the paper's shapes."""

import pytest

from repro.experiments import (
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    sec6e,
    run_spec_suite,
)
from repro.experiments.common import format_table, per_instruction_slowdown
from repro.stats import RunResult
from repro.workloads import build_bitcount


@pytest.fixture(scope="module")
def tiny_suite():
    """A three-workload suite shared by the fig10/12/13 tests."""
    return run_spec_suite(iterations=4, names=("bzip2", "gobmk", "astar"))


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_per_instruction_slowdown(self):
        ref = RunResult("s", "w", wall_ns=100.0, instructions=100,
                        instructions_executed=100, segments=1)
        slow = RunResult("s", "w", wall_ns=300.0, instructions=150,
                         instructions_executed=150, segments=1)
        assert per_instruction_slowdown(slow, ref) == pytest.approx(2.0)

    def test_empty_run_rejected(self):
        empty = RunResult("s", "w", wall_ns=0.0, instructions=0,
                          instructions_executed=0, segments=0)
        with pytest.raises(ValueError):
            per_instruction_slowdown(empty, empty)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08.run(
            workload=build_bitcount(values=40),
            rates=(1e-6, 1e-4, 2e-3),
            livelock_factor=12,
        )

    def test_row_per_rate(self, result):
        assert [row.error_rate for row in result.rows] == [1e-6, 1e-4, 2e-3]

    def test_low_rate_is_flat(self, result):
        row = result.rows[0]
        assert row.paramedic_slowdown < 1.3
        assert row.paradox_slowdown < 1.3

    def test_paradox_wins_at_high_rate(self, result):
        row = result.rows[-1]
        assert row.paradox_slowdown < row.paramedic_slowdown

    def test_paramedic_degrades_steeply(self, result):
        assert result.rows[-1].paramedic_slowdown > 3.0

    def test_table_renders(self, result):
        text = result.table()
        assert "Figure 8" in text and "1e-04" in text


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09.run(
            workloads=[build_bitcount(values=60)],
            rates=(1e-4, 1e-3),
            seeds=(11, 22),
        )

    def test_rows_cover_grid(self, result):
        assert len(result.rows) == 2 * 2  # systems x rates

    def test_events_observed_at_high_rate(self, result):
        point = result.point("bitcount", "ParaDox", 1e-3)
        assert point.events > 0

    def test_wasted_dominates_rollback(self, result):
        """Figure 9's headline: wasted execution >> rollback cost."""
        point = result.point("bitcount", "ParaDox", 1e-3)
        assert point.mean_wasted_ns > point.mean_rollback_ns

    def test_paradox_rollback_cheaper_than_paramedic(self, result):
        pm = result.point("bitcount", "ParaMedic", 1e-3)
        pd = result.point("bitcount", "ParaDox", 1e-3)
        assert pd.mean_rollback_ns < pm.mean_rollback_ns

    def test_table_renders(self, result):
        assert "rollback" in result.table()


class TestFig10:
    def test_rows_and_geomeans(self, tiny_suite):
        result = fig10.from_runs(tiny_suite)
        assert [r.workload for r in result.rows] == ["bzip2", "gobmk", "astar"]
        det, pm, pd = result.geomeans()
        assert det >= 0.99
        assert pm >= det * 0.99
        assert 0.9 < pd < 2.0

    def test_overheads_in_plausible_band(self, tiny_suite):
        result = fig10.from_runs(tiny_suite)
        for row in result.rows:
            assert 0.98 < row.detection_only < 1.6
            assert 0.98 < row.paramedic < 1.6

    def test_table_renders(self, tiny_suite):
        assert "gmean" in fig10.from_runs(tiny_suite).table()


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(workload=build_bitcount(values=400))

    def test_voltage_descends(self, result):
        assert result.dynamic.min_voltage < 1.1
        assert result.dynamic.trace[0][1] == pytest.approx(1.1)

    def test_steady_state_below_start(self, result):
        assert result.dynamic.steady_state_mean < 1.1

    def test_table_renders(self, result):
        assert "steady-state" in result.table()


class TestFig12:
    def test_wake_rates_shape(self, tiny_suite):
        result = fig12.from_runs(tiny_suite)
        for row in result.rows:
            assert len(row.wake_rates) == 16
            assert 0 <= row.average_wake <= 16
            assert row.peak_concurrency <= 16

    def test_gating_concentrates_low_ids(self, tiny_suite):
        result = fig12.from_runs(tiny_suite)
        for row in result.rows:
            rates = row.wake_rates
            # The paper's claim: average usage well under the full pool.
            assert row.average_wake <= 8
            del rates

    def test_table_renders(self, tiny_suite):
        assert "avg cores awake" in fig12.from_runs(tiny_suite).table()


class TestFig13:
    def test_summary_shape(self, tiny_suite):
        result = fig13.from_runs(tiny_suite)
        assert 0.7 < result.summary.mean_power < 0.9
        assert result.summary.power_reduction_percent > 10
        assert result.paramedic_edp_vs_paradox > 1.0

    def test_rows_have_all_fields(self, tiny_suite):
        result = fig13.from_runs(tiny_suite)
        for row in result.rows:
            assert row.power > 0 and row.slowdown > 0 and row.edp > 0
            assert row.checker_power < 0.05

    def test_table_renders(self, tiny_suite):
        text = fig13.from_runs(tiny_suite).table()
        assert "power reduction" in text


class TestSec6E:
    def test_paper_numbers(self):
        result = sec6e.run()
        assert result.restore.voltage_increase == pytest.approx(0.019, abs=0.001)
        assert result.boost.frequency_hz == pytest.approx(3.65e9, rel=0.02)

    def test_table_renders(self):
        assert "overclocking" in sec6e.run().table()
