"""Closed-form overhead model, and its agreement with the simulator."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import table1_config
from repro.core import (
    OverheadParameters,
    ParaDoxSystem,
    ParaMedicSystem,
    expected_waste_per_error,
    livelock_rate,
    optimal_segment_length,
    overhead_per_instruction,
    predicted_slowdown,
    rerun_inflation,
    young_daly_length,
)
from repro.workloads import build_bitcount

PARAMS = OverheadParameters.from_config()


class TestFormulas:
    def test_waste_grows_with_segment_length(self):
        assert expected_waste_per_error(2000, PARAMS) > expected_waste_per_error(
            200, PARAMS
        )

    def test_waste_dominated_by_checking(self):
        """Checkers are ~6x slower per instruction: check half > fill."""
        waste = expected_waste_per_error(1000, PARAMS)
        assert waste > 1000 * PARAMS.t_fill

    def test_rerun_inflation_small_p(self):
        assert rerun_inflation(1000, 1e-6) == pytest.approx(1.001, abs=1e-3)

    def test_rerun_inflation_livelock(self):
        assert rerun_inflation(5000, 0.01) > 1e20

    def test_rerun_inflation_bounds(self):
        with pytest.raises(ValueError):
            rerun_inflation(100, 1.5)

    def test_overhead_astronomical_in_livelock(self):
        value = overhead_per_instruction(5000, 0.05, PARAMS)
        assert math.isinf(value) or value > 1e50

    def test_overhead_convex_in_n(self):
        """Too-short segments pay checkpointing; too-long pay recovery."""
        p = 1e-4
        short = overhead_per_instruction(10, p, PARAMS)
        optimal = overhead_per_instruction(
            optimal_segment_length(p, PARAMS), p, PARAMS
        )
        long = overhead_per_instruction(5000, p, PARAMS)
        assert optimal <= short
        assert optimal <= long

    @given(st.floats(min_value=1e-6, max_value=1e-3))
    def test_young_daly_near_numeric_optimum(self, p):
        analytic = young_daly_length(p, PARAMS)
        numeric = optimal_segment_length(p, PARAMS)
        if 10 < analytic < 5000:  # inside the clamped range
            assert numeric / 2.2 <= analytic <= numeric * 2.2

    def test_optimal_length_decreases_with_error_rate(self):
        lengths = [
            optimal_segment_length(p, PARAMS) for p in (1e-6, 1e-5, 1e-4, 1e-3)
        ]
        assert lengths == sorted(lengths, reverse=True)

    def test_livelock_rate_for_paramedic_checkpoints(self):
        """5,000-instruction checkpoints livelock near p ~ 1e-3 —
        figure 8's ParaMedic cliff."""
        rate = livelock_rate(5000)
        assert 2e-4 < rate < 2e-3

    def test_livelock_rate_shrinks_with_length(self):
        assert livelock_rate(5000) < livelock_rate(100)

    def test_predicted_slowdown_monotone_in_p(self):
        slowdowns = [predicted_slowdown(1000, p, PARAMS) for p in (1e-6, 1e-4, 5e-4)]
        assert slowdowns == sorted(slowdowns)


class TestAgreementWithSimulator:
    """The analytic model must predict the simulator's *shape*."""

    @pytest.fixture(scope="class")
    def simulated(self):
        workload = build_bitcount(values=60)
        results = {}
        for rate in (1e-4, 1e-3):
            config = table1_config().with_error_rate(rate)
            engine = ParaMedicSystem(config=config).engine(workload)
            engine.options.livelock_factor = 24
            results[rate] = engine.run(workload.max_instructions)
        clean = ParaMedicSystem().run(workload)
        return clean, results

    def test_slowdown_ordering_matches(self, simulated):
        clean, results = simulated
        measured = {
            rate: (result.wall_ns / result.instructions)
            / (clean.wall_ns / clean.instructions)
            for rate, result in results.items()
        }
        n = int(clean.mean_checkpoint_length)
        predicted = {rate: predicted_slowdown(n, rate, PARAMS) for rate in results}
        # Both agree that 1e-3 is much worse than 1e-4.
        assert measured[1e-3] > measured[1e-4]
        assert predicted[1e-3] > predicted[1e-4]

    def test_paradox_operates_near_analytic_optimum(self):
        """ParaDox's AIMD steady-state checkpoint target should land in
        the same decade as the analytic optimum for the injected rate."""
        rate = 1e-3
        workload = build_bitcount(values=120)
        config = table1_config().with_error_rate(rate)
        result = ParaDoxSystem(config=config).run(workload)
        optimum = optimal_segment_length(rate, PARAMS)
        assert optimum / 10 <= result.final_checkpoint_target <= optimum * 10
