"""Property-based invariants of the voltage/frequency controller."""

from hypothesis import given, settings, strategies as st

from repro.config import DvfsConfig
from repro.dvfs import VoltageController

F_TARGET = 3.2e9

#: A random sequence of checkpoint events: (error?, time gap ns).
EVENT_SEQUENCES = st.lists(
    st.tuples(st.booleans(), st.floats(min_value=1.0, max_value=1e6)),
    min_size=1,
    max_size=200,
)


def drive(controller: VoltageController, events) -> None:
    now = 0.0
    for error, gap in events:
        now += gap
        controller.on_checkpoint(error, now)


class TestVoltageInvariants:
    @settings(max_examples=60, deadline=None)
    @given(events=EVENT_SEQUENCES, dynamic=st.booleans())
    def test_voltage_always_within_bounds(self, events, dynamic):
        config = DvfsConfig()
        controller = VoltageController(config, F_TARGET, dynamic_decrease=dynamic)
        now = 0.0
        for error, gap in events:
            now += gap
            controller.on_checkpoint(error, now)
            assert config.min_voltage <= controller.voltage <= config.safe_voltage
            assert (
                config.min_voltage
                <= controller.target_voltage
                <= config.safe_voltage
            )

    @settings(max_examples=60, deadline=None)
    @given(events=EVENT_SEQUENCES)
    def test_frequency_never_exceeds_target(self, events):
        controller = VoltageController(DvfsConfig(), F_TARGET)
        now = 0.0
        for error, gap in events:
            now += gap
            controller.on_checkpoint(error, now)
            assert 0 < controller.frequency_hz <= F_TARGET

    @settings(max_examples=60, deadline=None)
    @given(events=EVENT_SEQUENCES)
    def test_errors_never_lower_target(self, events):
        """An error must never push the target voltage *down*."""
        controller = VoltageController(DvfsConfig(), F_TARGET)
        now = 0.0
        for error, gap in events:
            before = controller.target_voltage
            now += gap
            controller.on_checkpoint(error, now)
            if error:
                assert controller.target_voltage >= before - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        gap_us=st.floats(min_value=0.1, max_value=100.0),
        drop_steps=st.integers(min_value=1, max_value=200),
    )
    def test_slew_rate_respected(self, gap_us, drop_steps):
        """Actual voltage never moves faster than the regulator slew."""
        config = DvfsConfig()
        controller = VoltageController(config, F_TARGET)
        for _ in range(drop_steps):
            controller.on_checkpoint(False, 0.0)  # target drops, no time passes
        v_before = controller.voltage
        controller.advance_to(gap_us * 1000.0)
        moved = abs(controller.voltage - v_before)
        assert moved <= config.slew_volts_per_us * gap_us + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(events=EVENT_SEQUENCES)
    def test_tide_mark_is_a_past_actual_voltage(self, events):
        config = DvfsConfig()
        controller = VoltageController(config, F_TARGET)
        drive(controller, events)
        if controller.tide_mark:
            assert config.min_voltage <= controller.tide_mark <= config.safe_voltage

    @settings(max_examples=40, deadline=None)
    @given(events=EVENT_SEQUENCES)
    def test_trace_length_matches_checkpoints(self, events):
        controller = VoltageController(DvfsConfig(), F_TARGET)
        drive(controller, events)
        assert len(controller.stats.trace) == len(events)
        assert controller.stats.errors_observed == sum(1 for e, _ in events if e)
