"""Table I validation: the reproduction simulates the published setup."""

import pytest

from repro.config import (
    CHECKER_FU_LATENCY,
    CacheConfig,
    MAIN_FU_LATENCY,
    SystemConfig,
    table1_config,
)


class TestMainCore:
    def test_three_wide_out_of_order_at_3_2_ghz(self):
        config = table1_config().main_core
        assert config.commit_width == 3
        assert config.frequency_hz == 3.2e9

    def test_window_sizes(self):
        config = table1_config().main_core
        assert config.rob_entries == 40
        assert config.issue_queue_entries == 32
        assert config.load_queue_entries == 16
        assert config.store_queue_entries == 16

    def test_physical_registers(self):
        config = table1_config().main_core
        assert config.int_phys_registers == 128
        assert config.fp_phys_registers == 128

    def test_functional_units(self):
        config = table1_config().main_core
        assert config.int_alus == 3
        assert config.fp_alus == 2
        assert config.mult_div_alus == 1

    def test_register_checkpoint_16_cycles(self):
        assert table1_config().main_core.register_checkpoint_cycles == 16


class TestBranchPredictor:
    def test_tournament_sizes(self):
        config = table1_config().branch_predictor
        assert config.local_entries == 2048
        assert config.global_entries == 8192
        assert config.chooser_entries == 2048
        assert config.btb_entries == 2048
        assert config.ras_entries == 16


class TestMemoryHierarchy:
    def test_l1i(self):
        l1i = table1_config().memory.l1i
        assert l1i.size_bytes == 32 * 1024
        assert l1i.associativity == 2
        assert l1i.hit_latency_cycles == 1
        assert l1i.mshrs == 6

    def test_l1d(self):
        l1d = table1_config().memory.l1d
        assert l1d.size_bytes == 32 * 1024
        assert l1d.associativity == 4
        assert l1d.hit_latency_cycles == 2
        assert l1d.mshrs == 6

    def test_l2(self):
        l2 = table1_config().memory.l2
        assert l2.size_bytes == 1024 * 1024
        assert l2.associativity == 16
        assert l2.hit_latency_cycles == 12
        assert l2.mshrs == 16
        assert l2.prefetcher == "stride"

    def test_dram_is_ddr3_1600(self):
        assert "DDR3-1600" in table1_config().memory.dram_name


class TestCheckers:
    def test_sixteen_in_order_at_1_ghz(self):
        config = table1_config().checker
        assert config.count == 16
        assert config.frequency_hz == 1e9
        assert config.pipeline_stages == 4

    def test_log_6_kib_5000_instructions(self):
        config = table1_config().checker
        assert config.log_bytes_per_core == 6 * 1024
        assert config.max_checkpoint_instructions == 5000

    def test_icaches(self):
        config = table1_config().checker
        assert config.l0_icache_bytes == 8 * 1024
        assert config.shared_l1_icache_bytes == 32 * 1024


class TestParaDoxParameters:
    def test_aimd_increment_10_cap_5000(self):
        config = table1_config().checkpoint
        assert config.additive_increase == 10
        assert config.max_instructions == 5000
        assert config.multiplicative_decrease == 0.5

    def test_dvfs_recovery_factor_0875(self):
        config = table1_config().dvfs
        assert config.recovery_factor == 0.875
        assert config.tide_slowdown == 8.0
        assert config.tide_reset_errors == 100

    def test_tan_model_nominal_1_1v(self):
        assert table1_config().dvfs.nominal_voltage == 1.1


class TestDerived:
    def test_frequency_ratio(self):
        assert table1_config().frequency_ratio() == pytest.approx(3.2)

    def test_cycle_times(self):
        config = table1_config()
        assert config.main_core.cycle_ns == pytest.approx(0.3125)
        assert config.checker.cycle_ns == pytest.approx(1.0)

    def test_with_error_rate_is_a_copy(self):
        base = table1_config()
        noisy = base.with_error_rate(1e-3)
        assert base.fault.error_rate == 0.0
        assert noisy.fault.error_rate == 1e-3

    def test_cache_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 1, mshrs=1)  # not divisible into sets

    def test_latency_tables_cover_all_units(self):
        from repro.isa import FunctionalUnit

        for unit in FunctionalUnit:
            assert unit.value in MAIN_FU_LATENCY
            assert unit.value in CHECKER_FU_LATENCY

    def test_checker_divide_relatively_slower(self):
        """Section IV-C: checker divide units are proportionally weaker."""
        main_ratio = MAIN_FU_LATENCY["int_div"] / MAIN_FU_LATENCY["int_alu"]
        checker_ratio = CHECKER_FU_LATENCY["int_div"] / CHECKER_FU_LATENCY["int_alu"]
        assert checker_ratio > main_ratio

    def test_default_config_is_frozen(self):
        config = SystemConfig()
        with pytest.raises(AttributeError):
            config.main_core = None  # type: ignore[misc]
