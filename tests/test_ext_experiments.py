"""Extension experiment harnesses (reduced sizes)."""

import pytest

from repro.experiments import ext_coverage, ext_design_space, ext_sharing
from repro.workloads import build_bitcount


class TestExtCoverage:
    def test_tables_render(self):
        result = ext_coverage.run(voltages=(1.0, 0.95))
        text = result.table()
        assert "SDC ParaDox" in text
        assert "undervolting the checkers" in text

    def test_points_cover_requested_voltages(self):
        result = ext_coverage.run(voltages=(1.02, 0.96))
        assert [p.voltage for p in result.points] == [1.02, 0.96]


class TestExtSharing:
    def test_small_run(self):
        result = ext_sharing.run(names=("bzip2", "lbm"), iterations=4)
        assert result.minimum_pool >= 1
        sixteen = next(r for r in result.reports if r.pool_size == 16)
        assert sixteen.blocked_fraction <= 0.05
        assert "sharing one pool" in result.table()


class TestExtDesignSpace:
    def test_small_sweep(self):
        result = ext_design_space.run(
            workloads=[build_bitcount(values=20)],
            checker_counts=(2, 16),
            log_sizes=(6144,),
        )
        points = result.points_for("bitcount", "checker")
        by_count = {p.checker_count: p for p in points}
        assert by_count[2].slowdown >= by_count[16].slowdown
        assert "Design space" in result.table()
