"""Assembler parsing, encoding and error reporting."""

import pytest

from repro.isa import (
    ArchState,
    AssemblerError,
    Executor,
    MemoryImage,
    Opcode,
    assemble,
)


class TestBasicParsing:
    def test_empty_lines_and_comments(self):
        program = assemble("""
            ; comment
            # another comment
            movi x1, 1  ; trailing
            halt
        """)
        assert len(program) == 2

    def test_mnemonics_case_insensitive(self):
        program = assemble("MOVI x1, 5\nHALT")
        assert program[0].opcode is Opcode.MOVI

    def test_hex_immediates(self):
        program = assemble("movi x1, 0xFF\nhalt")
        assert program[0].imm == 255

    def test_negative_immediates(self):
        program = assemble("addi x1, x2, -16\nhalt")
        assert program[0].imm == -16

    def test_float_immediates(self):
        program = assemble("fmovi f1, -2.5\nhalt")
        assert program[0].fimm == -2.5

    def test_memory_operand_with_offset(self):
        program = assemble("ldr x1, [x2, 16]\nhalt")
        instr = program[0]
        assert instr.rs1 == 2 and instr.imm == 16

    def test_memory_operand_without_offset(self):
        program = assemble("str x1, [x2]\nhalt")
        assert program[0].imm == 0

    def test_memory_operand_hex_offset(self):
        program = assemble("ldr x1, [x2, 0x40]\nhalt")
        assert program[0].imm == 64


class TestLabels:
    def test_forward_reference(self):
        program = assemble("b end\nnop\nend:\nhalt")
        assert program[0].target == 2

    def test_backward_reference(self):
        program = assemble("top:\nnop\nb top")
        assert program[1].target == 0

    def test_label_names_with_dots(self):
        program = assemble(".L1:\nb .L1")
        assert program[0].target == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("b nowhere\nhalt")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate x1\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add x1, x2\nhalt")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble("movi x99, 1\nhalt")

    def test_fp_register_out_of_range(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble("fmovi f16, 1.0\nhalt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("ldr x1, x2\nhalt")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as info:
            assemble("nop\nnop\nbogus x1\nhalt")
        assert info.value.line_number == 3


class TestEncodings:
    def test_jalr_single_operand(self):
        program = assemble("jalr x30")
        instr = program[0]
        assert instr.rs1 == 30 and instr.rd == 0

    def test_jalr_two_operands(self):
        program = assemble("jalr x1, x30")
        instr = program[0]
        assert instr.rd == 1 and instr.rs1 == 30

    def test_jal(self):
        program = assemble("jal x30, f\nf:\nhalt")
        assert program[0].rd == 30 and program[0].target == 1

    def test_cbz(self):
        program = assemble("cbz x5, out\nout:\nhalt")
        assert program[0].rs1 == 5

    def test_syscall(self):
        program = assemble("syscall 2")
        assert program[0].imm == 2

    def test_fstr_uses_fp_register(self):
        program = assemble("fstr f3, [x1, 8]")
        instr = program[0]
        assert instr.rs2 == 3 and instr.rs1 == 1


class TestEndToEnd:
    def test_fibonacci(self):
        source = """
            movi x1, 0      ; fib(0)
            movi x2, 1      ; fib(1)
            movi x3, 10     ; count
        loop:
            add x4, x1, x2
            mov x1, x2
            mov x2, x4
            subi x3, x3, 1
            cbnz x3, loop
            halt
        """
        program = assemble(source)
        state = ArchState()
        Executor(program, state, MemoryImage()).run(1000)
        assert state.regs.read_x(1) == 55  # fib(10)

    def test_listing_contains_labels(self):
        program = assemble("start:\nmovi x1, 1\nb start")
        listing = program.listing()
        assert "start:" in listing
        assert "movi" in listing
