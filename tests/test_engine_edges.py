"""Engine edge cases and accounting invariants."""

import pytest

from repro.config import table1_config
from repro.core import BaselineSystem, ParaDoxSystem, ParaMedicSystem
from repro.isa import ProgramBuilder
from repro.workloads import Workload, build_bitcount, golden_run


def tiny_workload(instructions=1):
    b = ProgramBuilder("tiny")
    for _ in range(max(instructions - 1, 0)):
        b.nop()
    b.halt()
    return Workload("tiny", b.build(), max_instructions=instructions + 10)


class TestDegenerateWorkloads:
    def test_single_instruction_program(self):
        result = ParaDoxSystem().run(tiny_workload(1))
        assert result.instructions == 1
        assert result.segments == 1

    def test_two_instruction_program(self):
        result = ParaMedicSystem().run(tiny_workload(2))
        assert result.instructions == 2
        assert result.program_output == []

    def test_budget_smaller_than_program(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small, max_instructions=100)
        assert result.instructions == 100
        assert result.segments >= 1

    def test_budget_of_exactly_one_segment(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small, max_instructions=1000)
        assert result.instructions == 1000


class TestAccountingInvariants:
    @pytest.mark.parametrize("rate", [0.0, 1e-3])
    def test_executed_at_least_useful(self, bitcount_small, rate):
        config = table1_config().with_error_rate(rate)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        assert result.instructions_executed >= result.instructions

    def test_wall_time_exceeds_ideal(self, bitcount_small):
        """Protected wall >= what pure 3-IPC execution would need."""
        result = ParaDoxSystem().run(bitcount_small)
        config = table1_config()
        ideal = result.instructions / 3 * config.main_core.cycle_ns
        assert result.wall_ns >= ideal

    def test_recovery_times_within_run(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        for event in result.recoveries:
            assert 0 <= event.detect_ns
            assert event.wasted_execution_ns >= 0

    def test_mean_recovery_none_when_clean(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small)
        assert result.mean_wasted_execution_ns() is None
        assert result.mean_rollback_ns() is None

    def test_wake_rates_consistent_with_segments(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small)
        # Someone must have been awake if anything was checked.
        assert result.segments == 0 or sum(result.checker_wake_rates) > 0

    def test_summary_renders(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        text = result.summary()
        assert "errors detected" in text
        assert "mean recovery" in text


class TestRunIndependence:
    def test_system_reusable_across_runs(self, bitcount_small, bitcount_golden):
        system = ParaDoxSystem()
        first = system.run(bitcount_small)
        second = system.run(bitcount_small)
        assert first.wall_ns == second.wall_ns
        assert first.program_output == bitcount_golden.output
        assert second.program_output == bitcount_golden.output

    def test_workload_memory_not_mutated(self, bitcount_small):
        before = dict(bitcount_small.initial_words)
        ParaDoxSystem().run(bitcount_small)
        assert bitcount_small.initial_words == before

    def test_engines_do_not_share_state(self, bitcount_small):
        system = ParaDoxSystem()
        engine_a = system.engine(bitcount_small)
        engine_b = system.engine(bitcount_small)
        engine_a.run(500)
        assert engine_b.state.instret == 0
        assert engine_b.memory != engine_a.memory or engine_a.memory == engine_b.memory


class TestCrossSystemConsistency:
    def test_all_systems_agree_on_useful_instructions(self, bitcount_small):
        counts = {
            cls().run(bitcount_small).instructions
            for cls in (BaselineSystem, ParaMedicSystem, ParaDoxSystem)
        }
        assert len(counts) == 1

    def test_error_free_timing_identical_for_pm_pd(self, bitcount_small):
        """Without errors and without DVS, ParaMedic and ParaDox differ
        only in policies that errors/conflicts activate: same wall time
        on a conflict-free workload."""
        pm = ParaMedicSystem().run(bitcount_small)
        pd = ParaDoxSystem().run(bitcount_small)
        assert pm.wall_ns == pytest.approx(pd.wall_ns, rel=1e-9)

    def test_first_error_at_same_point_for_same_seed(self, bitcount_small):
        config = table1_config().with_error_rate(1e-4, seed=99)
        pm = ParaMedicSystem(config=config).run(bitcount_small, seed=99)
        pd = ParaDoxSystem(config=config).run(bitcount_small, seed=99)
        if pm.recoveries and pd.recoveries:
            assert pm.recoveries[0].segment_seq == pd.recoveries[0].segment_seq


class TestGoldenAcrossBudgets:
    @pytest.mark.parametrize("budget", [137, 1000, 5000])
    def test_truncated_runs_match_truncated_golden(self, budget):
        workload = build_bitcount(values=30)
        golden = golden_run(workload, max_instructions=budget)
        engine = ParaDoxSystem().engine(workload)
        engine.run(budget)
        assert engine.state.instret == golden.instructions
        assert engine.memory == golden.memory
