"""Power/energy models and the section VI-E analysis."""

import pytest

from repro.power import (
    CHECKER_POOL_FULL_POWER,
    OperatingPoint,
    XGENE3_NOMINAL_FREQUENCY_HZ,
    XGENE3_NOMINAL_VOLTAGE,
    XGENE3_UNDERVOLT,
    boost_performance,
    checker_pool_power,
    energy_delay_product,
    energy_row,
    frequency_for_voltage,
    main_core_power,
    paramedic_edp_ratio,
    restore_performance,
    summarise,
    undervolt_point,
    voltage_for_frequency,
)
from repro.stats import RunResult
from repro.workloads import SPEC_ORDER

NOMINAL = OperatingPoint(XGENE3_NOMINAL_VOLTAGE, XGENE3_NOMINAL_FREQUENCY_HZ)


class TestMainCorePower:
    def test_nominal_is_unity(self):
        assert main_core_power(NOMINAL, NOMINAL) == pytest.approx(1.0)

    def test_undervolting_saves(self):
        undervolted = OperatingPoint(0.87, XGENE3_NOMINAL_FREQUENCY_HZ)
        power = main_core_power(undervolted, NOMINAL)
        assert 0.7 < power < 0.9

    def test_scales_with_v_squared_f(self):
        half_f = OperatingPoint(XGENE3_NOMINAL_VOLTAGE, XGENE3_NOMINAL_FREQUENCY_HZ / 2)
        power = main_core_power(half_f, NOMINAL)
        # Dynamic fraction halves, static unchanged.
        assert power == pytest.approx(0.85 / 2 + 0.15)

    def test_mean_xgene_saving_near_22_percent(self):
        """The substitute undervolt table must reproduce the published
        ~22% mean power saving."""
        savings = []
        for name in SPEC_ORDER:
            point = OperatingPoint(
                undervolt_point(name).undervolt_voltage, XGENE3_NOMINAL_FREQUENCY_HZ
            )
            savings.append(1.0 - main_core_power(point, NOMINAL))
        mean = sum(savings) / len(savings)
        assert 0.18 < mean < 0.26


class TestCheckerPoolPower:
    def test_all_awake_is_five_percent(self):
        assert checker_pool_power([1.0] * 16) == pytest.approx(
            CHECKER_POOL_FULL_POWER
        )

    def test_gated_idle_cores_free(self):
        power = checker_pool_power([0.5] + [0.0] * 15, gated=True)
        assert power == pytest.approx(CHECKER_POOL_FULL_POWER / 16 * 0.5)

    def test_ungated_idle_cores_leak(self):
        gated = checker_pool_power([0.5] + [0.0] * 15, gated=True)
        ungated = checker_pool_power([0.5] + [0.0] * 15, gated=False)
        assert ungated > gated

    def test_empty_pool(self):
        assert checker_pool_power([]) == 0.0

    def test_wake_rates_clamped(self):
        assert checker_pool_power([2.0]) == pytest.approx(CHECKER_POOL_FULL_POWER)


class TestEdp:
    def test_identity(self):
        assert energy_delay_product(1.0, 1.0) == 1.0

    def test_slowdown_squared(self):
        assert energy_delay_product(1.0, 2.0) == 4.0

    def test_paper_headline(self):
        """~0.78 power at ~1.045 slowdown -> ~0.85 EDP (the 15% claim)."""
        edp = energy_delay_product(0.78, 1.045)
        assert edp == pytest.approx(0.85, abs=0.02)


class TestVoltageFrequencyLine:
    def test_roundtrip(self):
        f = frequency_for_voltage(0.9, 0.872, 3.2e9)
        assert voltage_for_frequency(f, 0.872, 3.2e9) == pytest.approx(0.9)

    def test_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            frequency_for_voltage(0.4, 0.872, 3.2e9)


class TestOverclockingScenarios:
    def test_restore_performance_matches_paper(self):
        scenario = restore_performance(1.045)
        assert scenario.voltage_increase == pytest.approx(0.019, abs=0.001)
        assert scenario.frequency_increase_percent == pytest.approx(4.5, abs=0.1)
        # "increasing power consumption by 9% relative to the slower case"
        assert scenario.power_vs_undervolted == pytest.approx(1.09, abs=0.02)
        # "reducing it by 15% relative to the voltage-margined baseline"
        assert scenario.power_vs_margined == pytest.approx(0.85, abs=0.03)

    def test_boost_performance_matches_paper(self):
        scenario = boost_performance(0.06, 1.045)
        # "increasing clock frequency by 13% to around 3.6 GHz"
        assert scenario.frequency_hz == pytest.approx(3.6e9, rel=0.03)
        assert 12.0 < scenario.frequency_increase_percent < 16.0
        assert scenario.performance > 1.05  # net speedup over baseline

    def test_paramedic_edp_ratio_near_127(self):
        # Paper: ParaMedic EDP 1.08x baseline = 1.27x ParaDox's 0.85.
        ratio = paramedic_edp_ratio(1.08, 0.85)
        assert ratio == pytest.approx(1.27, abs=0.2)


def fake_result(wall_ns, wake_rates=None, name="bzip2"):
    return RunResult(
        system="x",
        workload=name,
        wall_ns=wall_ns,
        instructions=1000,
        instructions_executed=1000,
        segments=1,
        checker_wake_rates=wake_rates or [],
    )


class TestEnergyReport:
    def test_row_composition(self):
        baseline = fake_result(100.0)
        paradox = fake_result(104.5, wake_rates=[0.5] * 4 + [0.0] * 12)
        row = energy_row("bzip2", paradox, baseline)
        assert row.slowdown == pytest.approx(1.045)
        assert row.power == pytest.approx(row.main_power + row.checker_power)
        assert row.edp == pytest.approx(row.power * 1.045**2)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            undervolt_point("notaworkload")

    def test_table_covers_all_spec(self):
        assert set(XGENE3_UNDERVOLT) == set(SPEC_ORDER)

    def test_summary_geomeans(self):
        baseline = fake_result(100.0)
        rows = [
            energy_row(name, fake_result(105.0, [0.3] * 16, name), baseline)
            for name in ("bzip2", "mcf")
        ]
        summary = summarise(rows)
        assert summary.mean_slowdown == pytest.approx(1.05)
        assert 0 < summary.mean_power < 1
        assert summary.power_reduction_percent > 0

    def test_summarise_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])
