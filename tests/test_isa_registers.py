"""Register-file semantics: masking, x0, flags, snapshots, bit flips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    MASK64,
    NUM_FP_REGS,
    NUM_INT_REGS,
    Flag,
    RegisterCategory,
    RegisterFile,
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)


class TestIntRegisters:
    def test_initially_zero(self):
        regs = RegisterFile()
        assert all(regs.read_x(i) == 0 for i in range(NUM_INT_REGS))

    def test_write_read(self):
        regs = RegisterFile()
        regs.write_x(5, 1234)
        assert regs.read_x(5) == 1234

    def test_x0_hardwired_zero(self):
        regs = RegisterFile()
        regs.write_x(0, 999)
        assert regs.read_x(0) == 0

    def test_write_masks_to_64_bits(self):
        regs = RegisterFile()
        regs.write_x(1, 1 << 70)
        assert regs.read_x(1) == 0
        regs.write_x(1, MASK64 + 5)
        assert regs.read_x(1) == 4

    def test_negative_values_wrap(self):
        regs = RegisterFile()
        regs.write_x(1, -1)
        assert regs.read_x(1) == MASK64


class TestFpRegisters:
    def test_roundtrip(self):
        regs = RegisterFile()
        regs.write_f(3, 1.5)
        assert regs.read_f(3) == 1.5

    def test_bits_are_ieee754(self):
        regs = RegisterFile()
        regs.write_f(0, 1.0)
        assert regs.read_f_bits(0) == 0x3FF0000000000000

    def test_write_bits(self):
        regs = RegisterFile()
        regs.write_f_bits(2, 0x4000000000000000)
        assert regs.read_f(2) == 2.0

    @given(st.floats(allow_nan=False))
    def test_float_bits_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    def test_nan_bits_preserved(self):
        regs = RegisterFile()
        pattern = 0x7FF8000000000123  # a payloaded NaN
        regs.write_f_bits(1, pattern)
        assert regs.read_f_bits(1) == pattern
        assert regs.read_f(1) != regs.read_f(1)  # NaN

    def test_nan_value_writes_canonicalize(self):
        # Arithmetic results canonicalize to the positive quiet NaN
        # (RISC-V style): the host FPU's NaN sign must never reach the
        # architectural state — x86 propagates the first operand's NaN
        # and CPython's specializing interpreter reorders operands
        # between cold and warm executions of the same expression.
        negative_nan = bits_to_float(0xFFF8000000000000)
        assert float_to_bits(negative_nan) == 0x7FF8000000000000
        assert float_to_bits(bits_to_float(0x7FF800000000BEEF)) == (
            0x7FF8000000000000
        )
        regs = RegisterFile()
        regs.write_f(1, negative_nan)
        assert regs.read_f_bits(1) == 0x7FF8000000000000
        # Raw bit moves (FMOV, FLDR) still preserve sign and payload.
        regs.write_f_bits(2, 0xFFF8000000000123)
        assert regs.read_f_bits(2) == 0xFFF8000000000123


class TestFlags:
    def test_set_and_read(self):
        regs = RegisterFile()
        regs.set_flags(n=True, z=False, c=True, v=False)
        assert regs.flag(Flag.N) and regs.flag(Flag.C)
        assert not regs.flag(Flag.Z) and not regs.flag(Flag.V)

    def test_overwrite(self):
        regs = RegisterFile()
        regs.set_flags(True, True, True, True)
        regs.set_flags(False, False, False, False)
        assert regs.flags == 0


class TestSnapshot:
    def test_snapshot_is_independent(self):
        regs = RegisterFile()
        regs.write_x(1, 10)
        snap = regs.snapshot()
        regs.write_x(1, 20)
        assert snap.read_x(1) == 10

    def test_restore(self):
        regs = RegisterFile()
        regs.write_x(1, 10)
        regs.write_f(1, 2.5)
        regs.set_flags(True, False, False, True)
        snap = regs.snapshot()
        regs.write_x(1, 99)
        regs.write_f(1, 9.0)
        regs.set_flags(False, False, False, False)
        regs.restore(snap)
        assert regs.read_x(1) == 10
        assert regs.read_f(1) == 2.5
        assert regs.flag(Flag.N) and regs.flag(Flag.V)

    def test_equality(self):
        a, b = RegisterFile(), RegisterFile()
        assert a == b
        a.write_x(3, 7)
        assert a != b


class TestFlipBit:
    def test_flip_int(self):
        regs = RegisterFile()
        regs.flip_bit(RegisterCategory.INT, 2, 5)
        assert regs.read_x(2) == 32
        regs.flip_bit(RegisterCategory.INT, 2, 5)
        assert regs.read_x(2) == 0

    def test_flip_x0_discarded(self):
        regs = RegisterFile()
        regs.flip_bit(RegisterCategory.INT, 0, 3)
        assert regs.read_x(0) == 0

    def test_flip_float(self):
        regs = RegisterFile()
        regs.write_f(1, 1.0)
        regs.flip_bit(RegisterCategory.FLOAT, 1, 63)
        assert regs.read_f(1) == -1.0

    def test_flip_flags(self):
        regs = RegisterFile()
        regs.flip_bit(RegisterCategory.FLAGS, 0, int(Flag.Z))
        assert regs.flag(Flag.Z)

    def test_flip_misc_rejected_on_register_file(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs.flip_bit(RegisterCategory.MISC, 0, 0)

    def test_flip_bit_wraps_modulo_64(self):
        regs = RegisterFile()
        regs.flip_bit(RegisterCategory.INT, 1, 64)  # == bit 0
        assert regs.read_x(1) == 1

    @given(
        st.integers(min_value=1, max_value=NUM_INT_REGS - 1),
        st.integers(min_value=0, max_value=63),
    )
    def test_double_flip_is_identity(self, reg, bit):
        regs = RegisterFile()
        regs.write_x(reg, 0xDEADBEEF)
        regs.flip_bit(RegisterCategory.INT, reg, bit)
        regs.flip_bit(RegisterCategory.INT, reg, bit)
        assert regs.read_x(reg) == 0xDEADBEEF


class TestSignConversions:
    @given(st.integers(min_value=0, max_value=MASK64))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1
        assert to_signed(1 << 63) == -(1 << 63)

    def test_to_signed_positive(self):
        assert to_signed(5) == 5
        assert to_signed((1 << 63) - 1) == (1 << 63) - 1

    @given(st.integers())
    def test_to_unsigned_in_range(self, value):
        assert 0 <= to_unsigned(value) <= MASK64

    def test_fp_register_count(self):
        regs = RegisterFile()
        assert len(regs.f) == NUM_FP_REGS
