"""Unit tests for the resilience subsystem.

Covers the forward-progress guard's staged escalation, the voltage
controller's escalation hold, checker health tracking / quarantine and
its scheduler integration, the permanent and intermittent fault models,
and the injector's one-fault-per-operation rule.
"""

import numpy as np
import pytest

from repro.checkpoint import CheckpointLengthController
from repro.config import table1_config
from repro.core import ParaDoxSystem
from repro.cores import CheckerCore
from repro.dvfs import VoltageController
from repro.faults import (
    BurstFaultModel,
    FaultInjector,
    RegisterFaultModel,
    StuckAtFaultModel,
)
from repro.isa import ArchState, FunctionalUnit
from repro.resilience import (
    CheckerHealthTracker,
    ForwardProgressFailure,
    ForwardProgressGuard,
    ResilienceConfig,
)
from repro.scheduling import CheckerPool, SchedulingPolicy
from repro.stats import RunOutcome
from repro.workloads import (
    WorkloadProfile,
    build_bitcount,
    build_synthetic,
    golden_run,
)

from dataclasses import replace
from types import SimpleNamespace


def alu_write_info(dest_index=5, unit=FunctionalUnit.INT_ALU):
    """Minimal StepInfo stand-in: an instruction on ``unit`` writing x<n>."""
    return SimpleNamespace(
        instruction=SimpleNamespace(unit=unit),
        dest=("x", dest_index),
        reads=(),
        address=None,
        taken=None,
        pc_before=0,
        pc_after=0,
    )


def make_guard(dvfs=None, injector=None, **overrides):
    config = table1_config()
    controller = CheckpointLengthController(config.checkpoint, adaptive=True)
    guard = ForwardProgressGuard(
        ResilienceConfig(**overrides), controller, dvfs=dvfs, injector=injector
    )
    return guard, controller


def make_dvfs(initial_difference=0.1):
    config = table1_config()
    dvfs_config = replace(config.dvfs, initial_difference=initial_difference)
    return VoltageController(dvfs_config, config.main_core.frequency_hz)


class TestForwardProgressGuard:
    def test_streak_counts_same_checkpoint_only(self):
        guard, _ = make_guard()
        guard.on_rollback(100, 1.0)
        guard.on_rollback(100, 2.0)
        assert guard.streak == 2
        guard.on_rollback(200, 3.0)  # a different checkpoint restarts
        assert guard.streak == 1

    def test_commit_past_checkpoint_resets_but_older_does_not(self):
        guard, _ = make_guard()
        guard.on_rollback(100, 1.0)
        guard.on_commit(100)  # the segment *ending at* the checkpoint
        assert guard.streak == 1
        guard.on_commit(150)  # progress past it
        assert guard.streak == 0

    def test_shrink_stage_collapses_checkpoint_target(self):
        guard, controller = make_guard(shrink_after=3)
        config = table1_config().checkpoint
        for i in range(3):
            guard.on_rollback(5, float(i))
        assert controller.target == config.min_instructions
        assert [e.stage for e in guard.events] == ["shrink"]

    def test_voltage_stage_escalates_until_safe(self):
        dvfs = make_dvfs(initial_difference=0.1)
        guard, _ = make_guard(dvfs=dvfs, escalate_after=2, fail_after=10_000)
        now = 0.0
        while not dvfs.at_safe_voltage:
            now += 1000.0  # 1 us per retry: plenty of slew headroom
            guard.on_rollback(5, now)
        assert dvfs.stats.escalations > 0
        assert any(e.stage == "voltage" for e in guard.events)

    def test_fail_stage_raises_typed_failure_with_diagnostics(self):
        guard, _ = make_guard(fail_after=4)  # no dvfs: always "at safe"
        with pytest.raises(ForwardProgressFailure) as exc:
            for i in range(4):
                guard.on_rollback(77, float(i), checker_id=3, channel="register")
        diag = exc.value.diagnostics
        assert diag.checkpoint_instret == 77
        assert diag.consecutive_rollbacks == 4
        assert diag.implicated_checker == 3
        assert diag.channel_counts == {"register": 4}
        assert diag.at_safe_voltage

    def test_no_failure_below_safe_voltage(self):
        dvfs = make_dvfs(initial_difference=0.1)
        guard, _ = make_guard(dvfs=dvfs, fail_after=4)
        # Zero elapsed time: the regulator cannot slew, so the guard must
        # keep escalating instead of failing.
        for i in range(20):
            guard.on_rollback(5, 0.0)
        assert guard.streak == 20

    def test_failure_names_persistent_faults(self):
        rng = np.random.default_rng(0)
        injector = FaultInjector(
            [StuckAtFaultModel(rng, unit=FunctionalUnit.INT_MUL, bit=7)],
            target="checker",
        )
        guard, _ = make_guard(injector=injector, fail_after=2)
        with pytest.raises(ForwardProgressFailure) as exc:
            for i in range(2):
                guard.on_rollback(0, float(i))
        assert any("int_mul" in s for s in exc.value.diagnostics.suspected_faults)


class TestEscalationHold:
    def test_hold_blocks_aimd_descent_until_released(self):
        dvfs = make_dvfs(initial_difference=0.1)
        dvfs.escalate(0.0)
        held = dvfs.target_voltage
        dvfs.on_checkpoint(error_observed=False, now_ns=10.0)
        assert dvfs.target_voltage == held  # no descent while held
        dvfs.release_hold()
        dvfs.on_checkpoint(error_observed=False, now_ns=20.0)
        assert dvfs.target_voltage < held

    def test_guard_releases_hold_on_progress(self):
        dvfs = make_dvfs(initial_difference=0.1)
        guard, _ = make_guard(dvfs=dvfs, escalate_after=1)
        guard.on_rollback(5, 0.0)  # escalates, sets the hold
        before = dvfs.target_voltage
        guard.on_commit(50)  # progress releases the hold
        dvfs.on_checkpoint(error_observed=False, now_ns=10.0)
        assert dvfs.target_voltage < before

    def test_escalation_reaches_safe_despite_checkpoint_traffic(self):
        # The scenario behind the hold: every storm retry closes a
        # checkpoint, whose AIMD decrease must not outrun escalation.
        dvfs = make_dvfs(initial_difference=0.1)
        now = 0.0
        for _ in range(200):
            now += 100.0
            dvfs.on_checkpoint(error_observed=True, now_ns=now)
            if not dvfs.at_safe_voltage:
                dvfs.escalate(now)
            now += 100.0
            dvfs.on_checkpoint(error_observed=False, now_ns=now)
        assert dvfs.at_safe_voltage


class TestCheckerHealth:
    def test_quarantine_after_threshold_vindications(self):
        tracker = CheckerHealthTracker(4, quarantine_vindications=3)
        tracker.record_detection(2)
        assert tracker.record_vindication(2, 1.0) is None
        assert tracker.record_vindication(2, 2.0) is None
        event = tracker.record_vindication(2, 3.0)
        assert event is not None and event.core_id == 2
        assert tracker.is_quarantined(2)
        assert tracker.quarantined == {2}
        assert tracker.active_count == 3

    def test_absolution_resets_suspicion(self):
        tracker = CheckerHealthTracker(4, quarantine_vindications=3)
        tracker.record_vindication(1, 1.0)
        tracker.record_vindication(1, 2.0)
        tracker.record_absolution(1)  # a genuine detection clears it
        assert tracker.record_vindication(1, 3.0) is None
        assert not tracker.is_quarantined(1)

    def test_never_quarantines_last_healthy_core(self):
        tracker = CheckerHealthTracker(2, quarantine_vindications=1)
        assert tracker.record_vindication(0, 1.0) is not None
        assert tracker.record_vindication(1, 2.0) is None
        assert tracker.active_count == 1

    def test_pool_skips_quarantined_cores(self):
        config = table1_config()
        program = build_bitcount(values=4).program
        cores = [CheckerCore(i, config.checker, program) for i in range(4)]
        tracker = CheckerHealthTracker(4, quarantine_vindications=1)
        pool = CheckerPool(
            cores, SchedulingPolicy.LOWEST_FREE_ID, health=tracker
        )
        tracker.record_vindication(0, 0.0)
        core, _ = pool.select(0.0)
        assert core.core_id != 0

    def test_pool_avoid_set_steers_retry(self):
        config = table1_config()
        program = build_bitcount(values=4).program
        cores = [CheckerCore(i, config.checker, program) for i in range(4)]
        pool = CheckerPool(cores, SchedulingPolicy.LOWEST_FREE_ID)
        core, _ = pool.select(0.0, avoid={0})
        assert core.core_id != 0
        # If every core is excluded the constraint is dropped, not a deadlock.
        core, _ = pool.select(0.0, avoid={0, 1, 2, 3})
        assert core.core_id in {0, 1, 2, 3}


class TestFaultModels:
    def test_stuck_at_forces_bit(self):
        rng = np.random.default_rng(0)
        model = StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=0)
        state = ArchState()
        state.regs.write_x(5, 0b1010)  # bit 0 clear
        assert model.on_instruction(state, alu_write_info(5))
        assert state.regs.read_x(5) == 0b1011

    def test_stuck_at_masked_when_bit_matches(self):
        rng = np.random.default_rng(0)
        model = StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=1)
        state = ArchState()
        state.regs.write_x(5, 0b1010)  # bit 1 already set
        assert not model.on_instruction(state, alu_write_info(5))
        assert state.regs.read_x(5) == 0b1010

    def test_stuck_at_ignores_other_units_and_x0(self):
        rng = np.random.default_rng(0)
        model = StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=0)
        state = ArchState()
        other = alu_write_info(5, unit=FunctionalUnit.INT_MUL)
        assert not model.on_instruction(state, other)
        assert not model.on_instruction(state, alu_write_info(0))  # x0

    def test_stuck_at_is_permanent(self):
        rng = np.random.default_rng(0)
        model = StuckAtFaultModel(rng, unit=FunctionalUnit.INT_MUL, bit=3)
        assert model.persistent
        model.set_rate(0.0)  # a broken wire does not heal
        assert model.may_fire_within(1)
        assert not model.may_fire_within(0)
        assert "int_mul" in model.describe()

    def test_burst_model_markov_chain(self):
        rng = np.random.default_rng(42)
        model = BurstFaultModel(0.01, rng, burst_rate=0.5, mean_burst_ops=10.0)
        state = ArchState()
        fired = 0
        for _ in range(2000):
            if model.on_instruction(state, alu_write_info(5)):
                fired += 1
        assert model.bursts_entered > 0
        assert fired > 0

    def test_burst_entry_rate_follows_set_rate(self):
        rng = np.random.default_rng(0)
        model = BurstFaultModel(1e-4, rng, entry_scale=10.0)
        assert model.entry_probability == pytest.approx(1e-3)
        model.set_rate(0.0)
        assert model.entry_probability == 0.0
        model.in_burst = True
        assert model.may_fire_within(5)  # an in-flight burst keeps firing


class TestInjectorRules:
    def test_at_most_one_fault_per_load(self):
        # Two always-firing models must not both corrupt one value: the
        # second flip can silently cancel the first.
        class AlwaysFlip(RegisterFaultModel):
            def on_load(self, value):
                return value ^ 1, True

        rng = np.random.default_rng(0)
        injector = FaultInjector(
            [AlwaysFlip(1.0, rng), AlwaysFlip(1.0, rng)], target="checker"
        )
        corrupted = injector.corrupt_load(0, 0)
        assert corrupted == 1  # flipped exactly once
        assert injector.stats.load_faults == 1

    def test_bound_model_fires_only_on_its_checker(self):
        rng = np.random.default_rng(0)
        model = StuckAtFaultModel(
            rng, unit=FunctionalUnit.INT_ALU, bit=0, bound_checker_id=2
        )
        injector = FaultInjector([model], target="checker")
        state = ArchState()
        state.regs.write_x(5, 0b1010)
        info = alu_write_info(5)
        injector.begin_check(1)
        injector.after_instruction(state, info, 0)
        assert injector.stats.instruction_faults == 0
        injector.begin_check(2)
        injector.after_instruction(state, info, 0)
        assert injector.stats.instruction_faults == 1


class TestEngineIntegration:
    def test_bound_stuck_at_quarantined_and_run_completes(self):
        workload = build_bitcount(values=40)
        golden = golden_run(workload)
        rng = np.random.default_rng(7)
        injector = FaultInjector(
            [
                StuckAtFaultModel(
                    rng, unit=FunctionalUnit.INT_ALU, bit=2, bound_checker_id=0
                )
            ],
            target="checker",
        )
        system = ParaDoxSystem(resilient=True)
        result = system.run(workload, seed=7, injector=injector)
        assert result.outcome is RunOutcome.COMPLETED
        assert [e.core_id for e in result.quarantine_events] == [0]
        assert result.program_output == golden.output

    def test_global_stuck_at_fails_typed_never_livelocks(self):
        workload = build_bitcount(values=40)
        rng = np.random.default_rng(7)
        injector = FaultInjector(
            [StuckAtFaultModel(rng, unit=FunctionalUnit.INT_ALU, bit=2)],
            target="checker",
        )
        system = ParaDoxSystem(resilient=True)
        result = system.run(workload, seed=7, injector=injector)
        assert result.outcome is RunOutcome.FORWARD_PROGRESS_FAILURE
        assert not result.livelocked
        assert result.failure is not None
        assert any("int_alu" in s for s in result.failure.suspected_faults)

    def test_crawling_stuck_at_storm_fails_typed_not_livelock(self):
        # Regression (found by the typed-outcome property): a pervasive
        # stuck-at lets the run *crawl* — retries at moments when the bit
        # already holds the stuck value commit clean, resetting the
        # guard's same-checkpoint streak — so fail_after never trips and
        # the livelock budget exhausts first.  Budget exhaustion with a
        # persistent model at the safe voltage must still surface as a
        # typed forward-progress failure naming the unit.
        profile = WorkloadProfile(
            name="crawling-storm", alu=5.5, mul=1.0, load=1.0, store=0.5,
            working_set_kib=32, sequential_fraction=0.0,
            code_blocks=3, block_ops=11,
        )
        workload = build_synthetic(profile, iterations=3, seed=5553 % 1000)
        rng = np.random.default_rng(5553)
        injector = FaultInjector(
            [StuckAtFaultModel(rng, unit=FunctionalUnit.INT_MUL, bit=24)],
            target="checker",
        )
        engine = ParaDoxSystem(resilient=True).engine(
            workload, seed=5553, injector=injector
        )
        result = engine.run(workload.max_instructions)
        assert result.outcome is RunOutcome.FORWARD_PROGRESS_FAILURE
        assert not result.livelocked
        assert any("int_mul" in s for s in result.failure.suspected_faults)

    def test_livelock_is_an_outcome_not_an_exception(self):
        workload = build_bitcount(values=40)
        system = ParaDoxSystem()  # legacy mode: no resilience layer
        engine = system.engine(workload, seed=1)
        engine.options.livelock_factor = 0.01  # force the budget to trip
        result = engine.run(workload.max_instructions)
        assert result.outcome is RunOutcome.LIVELOCK
        assert result.livelocked

    def test_legacy_runs_default_to_completed(self):
        workload = build_bitcount(values=40)
        result = ParaDoxSystem().run(workload, seed=1)
        assert result.outcome is RunOutcome.COMPLETED
        assert result.quarantine_events == []
        assert result.escalations == []
