"""The ``repro serve`` job service: HTTP API, streaming, store queries."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import create_server
from repro.service.jobs import JobError, JobRunner, _campaign_spec

CAMPAIGN_PARAMS = {
    "workload": "bitcount",
    "scale": 0.1,
    "seeds": 2,
    "rates": [1e-4],
    "models": ["transient"],
    "timeout_s": 60,
    "workers": 2,
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    work_dir = tmp_path_factory.mktemp("service")
    server = create_server("127.0.0.1", 0, work_dir=str(work_dir))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.runner.shutdown()
    server.shutdown()
    server.server_close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return resp.status, resp.read().decode(), dict(resp.headers)


def post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def wait_done(base, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = json.loads(get(base, f"/jobs/{job_id}")[1])
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish")


def submit_campaign(base, params=None):
    status, job = post(
        base, "/jobs", {"kind": "campaign", "params": params or CAMPAIGN_PARAMS}
    )
    assert status == 201
    return job


class TestValidation:
    def test_unknown_kind_rejected(self, service):
        status, body = post(service, "/jobs", {"kind": "bake", "params": {}})
        assert status == 400 and "bake" in body["error"]

    def test_unknown_campaign_param_rejected(self, service):
        status, body = post(
            service, "/jobs", {"kind": "campaign", "params": {"bogus": 1}}
        )
        assert status == 400 and "bogus" in body["error"]

    def test_bad_model_rejected_at_submission(self, service):
        status, body = post(
            service,
            "/jobs",
            {"kind": "campaign", "params": {"models": ["nope"]}},
        )
        assert status == 400

    def test_non_json_body_rejected(self, service):
        request = urllib.request.Request(
            service + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_campaign_spec_helper_rejects_unknowns(self):
        with pytest.raises(JobError):
            _campaign_spec({"bogus": 1})


class TestJobs:
    def test_campaign_job_lifecycle(self, service):
        job = submit_campaign(service)
        assert job["state"] == "queued"
        done = wait_done(service, job["job_id"])
        assert done["state"] == "done", done["error"]
        assert done["result"]["runs"] == 2
        assert done["campaign_key"]
        assert sum(done["result"]["counts"].values()) == 2

    def test_events_tail_and_offset(self, service):
        job = submit_campaign(service)
        wait_done(service, job["job_id"])
        _, body, headers = get(service, f"/jobs/{job['job_id']}/events")
        kinds = [json.loads(line)["kind"] for line in body.splitlines()]
        assert kinds[0] == "job_started"
        assert kinds[-1] == "job_finished"
        assert "run_classified" in kinds or "run_cached" in kinds
        # Tailing again from the returned offset yields nothing new.
        offset = headers["X-Events-Offset"]
        _, rest, _ = get(
            service, f"/jobs/{job['job_id']}/events?offset={offset}"
        )
        assert rest == ""

    def test_resubmitted_campaign_resumes_from_store(self, service):
        first = submit_campaign(service)
        wait_done(service, first["job_id"])
        second = submit_campaign(service)
        done = wait_done(service, second["job_id"])
        assert done["result"]["runs"] == 2
        _, body, _ = get(service, f"/jobs/{second['job_id']}/events")
        kinds = [json.loads(line)["kind"] for line in body.splitlines()]
        assert "run_cached" in kinds
        assert "run_started" not in kinds  # nothing re-executed

    def test_follow_stream_terminates_with_job(self, service):
        job = submit_campaign(service)
        with urllib.request.urlopen(
            service + f"/jobs/{job['job_id']}/events?follow=1", timeout=120
        ) as resp:
            kinds = [json.loads(line)["kind"] for line in resp]
        assert kinds[-1] == "job_finished"

    def test_jobs_listing(self, service):
        job = submit_campaign(service)
        wait_done(service, job["job_id"])
        _, body, _ = get(service, "/jobs")
        listed = [j["job_id"] for j in json.loads(body)["jobs"]]
        assert job["job_id"] in listed

    def test_unknown_job_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(service + "/jobs/deadbeef", timeout=30)
        assert info.value.code == 404


class TestStoreEndpoints:
    def test_campaign_queries(self, service):
        job = submit_campaign(service)
        done = wait_done(service, job["job_id"])
        key = done["campaign_key"]

        _, body, _ = get(service, "/store/campaigns")
        campaigns = json.loads(body)["campaigns"]
        assert any(c["campaign_key"] == key for c in campaigns)

        _, body, _ = get(service, f"/store/campaigns/{key[:12]}")
        summary = json.loads(body)
        assert summary["campaign_key"] == key
        assert summary["pending"] == 0

        _, body, _ = get(service, f"/store/campaigns/{key[:12]}/runs?limit=1")
        runs = json.loads(body)
        assert runs["count"] == 1
        assert runs["runs"][0]["campaign_key"] == key

        _, body, _ = get(
            service, f"/store/campaigns/{key[:12]}/runs?class=masked"
        )
        for run in json.loads(body)["runs"]:
            assert run["run_class"] == "masked"

    def test_unknown_campaign_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(
                service + "/store/campaigns/ffffffffffff", timeout=30
            )
        assert info.value.code == 404

    def test_dashboard_renders(self, service):
        job = submit_campaign(service)
        wait_done(service, job["job_id"])
        status, body, headers = get(service, "/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert "viz-root" in body and "masked" in body

    def test_unknown_path_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(service + "/nope", timeout=30)
        assert info.value.code == 404


class TestRunner:
    def test_runner_without_server(self, tmp_path):
        runner = JobRunner(str(tmp_path / "work"))
        job = runner.submit("campaign", CAMPAIGN_PARAMS)
        deadline = time.monotonic() + 120
        while not job.terminal and time.monotonic() < deadline:
            time.sleep(0.05)
        assert job.state == "done", job.error
        assert job.result["runs"] == 2
        runner.shutdown()

    def test_submit_validates_before_enqueue(self, tmp_path):
        runner = JobRunner(str(tmp_path / "work"))
        with pytest.raises(JobError):
            runner.submit("campaign", {"models": ["nope"]})
        assert runner.jobs() == []
        runner.shutdown()
