"""Design-space exploration: genome codec, NSGA-II machinery, the
seeded search loop's byte-identity guarantees, and the explore CLI."""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, cmd_explore, cmd_store, explore_spec_from_args
from repro.config import table1_config
from repro.explore import (
    GENES,
    ExploreSpec,
    HYPERVOLUME_REFERENCE,
    OBJECTIVE_NAMES,
    PENALTY,
    crossover,
    crowding_distances,
    dominates,
    explore_key,
    genome_key,
    hypervolume,
    mutate,
    non_dominated_sort,
    objectives_from_records,
    paper_default_genome,
    pareto_front_indices,
    random_genome,
    repair,
    run_explore,
    select_survivors,
)
from repro.resilience.campaign import (
    CONFIG_OVERRIDES,
    RESILIENCE_OVERRIDES,
    CampaignSpec,
    RunClass,
    RunRecord,
    apply_config_overrides,
)
from repro.resilience.guard import ResilienceConfig
from repro.store import CampaignStore, StoreError, run_key
from repro.store.runkey import canonical_cell

REPO_ROOT = Path(__file__).resolve().parents[1]


def small_explore_spec(**kwargs):
    base = dict(
        workload="bitcount",
        scale=0.1,
        generations=2,
        population=3,
        seed=0,
        eval_seeds=2,
        timeout_s=60.0,
        workers=0,
    )
    base.update(kwargs)
    return ExploreSpec(**base)


def report_bytes(result):
    return json.dumps(result.to_dict(), sort_keys=True).encode()


class TestGenome:
    def test_paper_default_matches_simulator_defaults(self):
        config = table1_config()
        resilience = ResilienceConfig()
        genome = paper_default_genome()
        assert genome["checker_count"] == config.checker.count
        assert genome["ckpt_additive_increase"] == config.checkpoint.additive_increase
        assert (
            genome["ckpt_multiplicative_decrease"]
            == config.checkpoint.multiplicative_decrease
        )
        assert (
            genome["ckpt_initial_instructions"]
            == config.checkpoint.initial_instructions
        )
        assert genome["dvfs_step_volts"] == config.dvfs.step_volts
        assert genome["dvfs_recovery_factor"] == config.dvfs.recovery_factor
        assert genome["dvfs_tide_slowdown"] == config.dvfs.tide_slowdown
        assert genome["dvfs_min_voltage"] == config.dvfs.min_voltage
        assert genome["guard_shrink_after"] == resilience.shrink_after
        assert genome["guard_escalate_after"] == resilience.escalate_after
        assert (
            genome["quarantine_vindications"] == resilience.quarantine_vindications
        )

    def test_gene_names_cover_every_override(self):
        names = {gene.name for gene in GENES}
        assert names == set(CONFIG_OVERRIDES) | set(RESILIENCE_OVERRIDES)

    def test_repair_clamps_and_quantises(self):
        fixed = repair({"checker_count": 999, "dvfs_min_voltage": 0.70499})
        assert fixed["checker_count"] == 24
        assert fixed["dvfs_min_voltage"] == 0.70
        # Missing genes fall back to the paper defaults.
        assert fixed["ckpt_additive_increase"] == 10

    def test_repair_orders_guard_stages(self):
        fixed = repair({"guard_shrink_after": 5, "guard_escalate_after": 4})
        assert fixed["guard_escalate_after"] > fixed["guard_shrink_after"]

    def test_genome_key_is_order_independent_and_repairing(self):
        genome = paper_default_genome()
        shuffled = dict(reversed(list(genome.items())))
        assert genome_key(genome) == genome_key(shuffled)
        # An out-of-range value keys like its repaired self.
        assert genome_key({**genome, "checker_count": 999}) == genome_key(
            {**genome, "checker_count": 24}
        )
        assert genome_key({**genome, "checker_count": 23}) != genome_key(genome)

    def test_operators_are_seeded_and_in_range(self):
        a = random_genome(np.random.default_rng(1))
        b = random_genome(np.random.default_rng(2))
        assert a == random_genome(np.random.default_rng(1))
        child = mutate(crossover(a, b, np.random.default_rng(3)),
                       np.random.default_rng(4))
        for gene in GENES:
            assert gene.low <= child[gene.name] <= gene.high
            if gene.kind == "int":
                assert isinstance(child[gene.name], int)


class TestOverrides:
    def test_apply_overrides_changes_configs(self):
        config, resilience = apply_config_overrides(
            table1_config(),
            ResilienceConfig(),
            {"checker_count": 8, "dvfs_min_voltage": 0.8,
             "quarantine_vindications": 5},
        )
        assert config.checker.count == 8
        assert config.dvfs.min_voltage == 0.8
        assert resilience.quarantine_vindications == 5
        # Untouched knobs keep their defaults.
        assert config.checkpoint.additive_increase == 10

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError):
            apply_config_overrides(
                table1_config(), ResilienceConfig(), {"not_a_knob": 1}
            )

    def cell(self, **extra):
        payload = {
            "workload": "bitcount", "scale": 0.1, "seed": 0, "rate": 1e-4,
            "model": "transient", "dvs": True, "initial_margin": 0.15,
            "chip_seed": 0, "voltage": None,
        }
        payload.update(extra)
        return payload

    def test_absent_overrides_leave_cell_and_key_unchanged(self):
        # The omit-when-absent rule: legacy cells (no overrides) must
        # canonicalise — and therefore hash — exactly as before PR 9.
        assert "overrides" not in canonical_cell(self.cell())
        assert run_key(self.cell()) == run_key(self.cell(overrides=None))

    def test_overrides_change_the_run_key(self):
        plain = run_key(self.cell())
        tweaked = run_key(self.cell(overrides={"checker_count": 8}))
        assert plain != tweaked
        cell = canonical_cell(self.cell(overrides={"checker_count": 8}))
        assert cell["overrides"] == {"checker_count": 8}

    def test_campaign_spec_round_trips_overrides(self):
        spec = CampaignSpec(
            workload="bitcount", scale=0.1, seeds=1,
            overrides={"checker_count": 8},
        )
        data = spec.to_dict()
        assert data["overrides"] == {"checker_count": 8}
        assert all("overrides" in cell for cell in spec.expand())
        # And the omit-when-absent rule on the spec itself.
        assert "overrides" not in CampaignSpec(workload="bitcount").to_dict()


class TestArchive:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 1), (1, 1))
        assert not dominates((1, 3), (2, 1))

    def test_non_dominated_sort_fronts(self):
        points = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
        fronts = non_dominated_sort(points)
        assert fronts[0] == [0, 1, 2]
        assert fronts[1] == [3]
        assert fronts[2] == [4]
        assert pareto_front_indices(points) == [0, 1, 2]

    def test_crowding_boundaries_are_infinite(self):
        distances = crowding_distances([(1, 4), (2, 2), (4, 1)])
        assert distances[0] == float("inf")
        assert distances[2] == float("inf")
        assert 0.0 < distances[1] < float("inf")

    def test_hypervolume_known_values(self):
        assert hypervolume([(0, 0, 0)], (1, 1, 1)) == pytest.approx(1.0)
        assert hypervolume([(0.5, 0.5, 0.5)], (1, 1, 1)) == pytest.approx(0.125)
        # Two non-dominated points: union, not sum.
        assert hypervolume(
            [(0.0, 0.5, 0.5), (0.5, 0.0, 0.0)], (1, 1, 1)
        ) == pytest.approx(0.25 + 0.5 - 0.125)
        # A point outside the reference box contributes nothing.
        assert hypervolume([(2, 2, 2)], (1, 1, 1)) == 0.0
        with pytest.raises(ValueError):
            hypervolume([(0, 0)], (1, 1))

    def test_select_survivors_prefers_rank_then_spread(self):
        objectives = {
            "a": (1.0, 4.0), "b": (2.0, 2.0), "c": (4.0, 1.0),
            "d": (3.0, 3.0),
        }
        keys = sorted(objectives)
        assert select_survivors(keys, objectives, 3) == ["a", "c", "b"]
        # Deterministic under duplication and any input order.
        assert select_survivors(
            list(reversed(keys)) + ["a"], objectives, 3
        ) == ["a", "c", "b"]


class TestFitness:
    def record(self, run_class=RunClass.DETECTED_RECOVERED, wall_ns=2000.0,
               mean_voltage=1.1, wake_rates=()):
        return RunRecord(
            run_id=0, seed=0, rate=1e-4, model="transient",
            workload="bitcount", run_class=run_class, wall_ns=wall_ns,
            mean_voltage=mean_voltage, wake_rates=list(wake_rates),
        )

    def test_all_failed_gets_penalty(self):
        objectives = objectives_from_records(
            [self.record(run_class=RunClass.SDC)], scale=0.1
        )
        assert objectives["energy"] == PENALTY["energy"]
        assert objectives["slowdown"] == PENALTY["slowdown"]
        assert objectives["failure_rate"] == 1.0

    def test_failure_rate_counts_the_taxonomy_failures(self):
        records = [
            self.record(),
            self.record(run_class=RunClass.HANG),
            self.record(run_class=RunClass.CRASH),
            self.record(run_class=RunClass.MASKED),
        ]
        objectives = objectives_from_records(records, scale=0.1)
        assert objectives["failure_rate"] == 0.5

    def test_nominal_voltage_is_energy_one(self):
        from repro.explore.fitness import baseline_wall_ns

        baseline = baseline_wall_ns("bitcount", 0.1)
        objectives = objectives_from_records(
            [self.record(wall_ns=baseline, mean_voltage=1.1)], scale=0.1
        )
        # Same wall clock as the baseline at nominal voltage with a
        # silent checker pool: energy == slowdown == 1.
        assert objectives["slowdown"] == pytest.approx(1.0)
        assert objectives["energy"] == pytest.approx(1.0)

    def test_undervolting_saves_energy(self):
        from repro.explore.fitness import baseline_wall_ns

        baseline = baseline_wall_ns("bitcount", 0.1)
        nominal = objectives_from_records(
            [self.record(wall_ns=baseline, mean_voltage=1.1)], scale=0.1
        )
        undervolted = objectives_from_records(
            [self.record(wall_ns=baseline, mean_voltage=0.9)], scale=0.1
        )
        assert undervolted["energy"] < nominal["energy"]

    def test_objective_names_match_reference_point(self):
        assert len(OBJECTIVE_NAMES) == len(HYPERVOLUME_REFERENCE) == 3


class TestStoreExplore:
    def test_schema_v3_tables_exist(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with CampaignStore(path) as store:
            assert store.version >= 3
            store.register_explore("k1", {"seed": 0})
            store.record_evaluation(
                "k1", "g1", 0, {"checker_count": 8}, {"energy": 1.0}, "c1"
            )
            rows = store.load_evaluations("k1")
        assert rows == [{
            "genome_key": "g1", "generation": 0,
            "genome": {"checker_count": 8},
            "objectives": {"energy": 1.0}, "campaign_key": "c1",
        }]

    def test_first_writer_keeps_the_original_generation(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with CampaignStore(path) as store:
            store.register_explore("k1", {})
            store.record_evaluation("k1", "g1", 0, {}, {}, "c1")
            store.record_evaluation("k1", "g1", 3, {}, {}, "c1")
            [row] = store.load_evaluations("k1")
            assert row["generation"] == 0
            assert store.list_explores()[0]["evaluations"] == 1

    def test_garbage_file_raises_store_error(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        path.write_text("this is not a sqlite database at all")
        with pytest.raises(StoreError) as excinfo:
            CampaignStore(str(path))
        assert "not a campaign store" in str(excinfo.value)

    def test_store_ls_reports_garbage_cleanly(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        path.write_text("garbage")
        args = build_parser().parse_args(["store", "ls", str(path)])
        with pytest.raises(SystemExit) as excinfo:
            cmd_store(args)
        assert "not a campaign store" in str(excinfo.value)

    def test_store_ls_missing_file_exits(self):
        args = build_parser().parse_args(["store", "ls", "/nonexistent.sqlite"])
        with pytest.raises(SystemExit) as excinfo:
            cmd_store(args)
        assert "no store file" in str(excinfo.value)


class TestExploreLoop:
    def test_same_seed_is_byte_identical(self):
        a = run_explore(small_explore_spec())
        b = run_explore(small_explore_spec())
        assert report_bytes(a) == report_bytes(b)

    def test_workers_width_cannot_change_the_search(self):
        serial = run_explore(small_explore_spec(workers=1))
        wide = run_explore(small_explore_spec(workers=4))
        assert report_bytes(serial) == report_bytes(wide)

    def test_explore_key_ignores_execution_only_fields(self):
        assert explore_key(small_explore_spec(workers=1)) == explore_key(
            small_explore_spec(workers=8, timeout_s=5.0)
        )
        assert explore_key(small_explore_spec(seed=1)) != explore_key(
            small_explore_spec(seed=2)
        )

    def test_front_is_non_dominated_and_archived(self):
        result = run_explore(small_explore_spec())
        assert result.front_keys
        points = {
            e.genome_key: tuple(e.objectives[n] for n in OBJECTIVE_NAMES)
            for e in result.evaluations
        }
        for fkey in result.front_keys:
            assert not any(
                dominates(points[other], points[fkey])
                for other in points if other != fkey
            )
        assert len(result.generations) == result.spec.generations
        assert result.default_evaluation() is not None

    def test_store_resume_contract(self, tmp_path):
        store = str(tmp_path / "store.sqlite")
        spec = small_explore_spec()
        reference = report_bytes(run_explore(spec, store_path=store))
        with pytest.raises(StoreError):
            run_explore(spec, store_path=store)
        replayed = run_explore(spec, store_path=store, resume=True)
        assert report_bytes(replayed) == reference
        with CampaignStore(store) as s:
            rows = s.load_evaluations(explore_key(spec))
        assert len(rows) == len(replayed.evaluations)

    def test_telemetry_events_use_generation_time(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        run_explore(small_explore_spec(), tracer=tracer)
        generations = tracer.of_kind("explore", "generation")
        assert [event.time_ns for event in generations] == [0.0, 1.0]
        assert tracer.of_kind("explore", "front")
        assert tracer.of_kind("explore", "evaluation")

    def test_rejects_degenerate_specs(self):
        with pytest.raises(ValueError):
            run_explore(small_explore_spec(generations=0))
        with pytest.raises(ValueError):
            run_explore(small_explore_spec(population=1))


class TestExploreCLI:
    def parse(self, *argv):
        return build_parser().parse_args(["explore", *argv])

    def test_flags_reach_the_spec(self):
        spec = explore_spec_from_args(self.parse(
            "--workload", "crc32", "--scale", "0.2", "--generations", "3",
            "--population", "5", "--seed", "7", "--eval-seeds", "6",
            "--rate", "1e-3", "--model", "burst", "--run-timeout", "9",
            "--workers", "2",
        ))
        assert spec.workload == "crc32"
        assert spec.scale == 0.2
        assert spec.generations == 3
        assert spec.population == 5
        assert spec.seed == 7
        assert spec.eval_seeds == 6
        assert spec.rate == 1e-3
        assert spec.model == "burst"
        assert spec.timeout_s == 9.0
        assert spec.workers == 2

    def test_smoke_overrides_the_grid(self):
        spec = explore_spec_from_args(self.parse("--smoke", "--workers", "3"))
        assert spec.generations == 2
        assert spec.population == 4
        assert spec.workers == 3

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            cmd_explore(self.parse("--resume", "--smoke"))


def run_cli(*argv, check=True, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env=env,
        check=check,
        capture_output=True,
        text=True,
        **kwargs,
    )


EXPLORE_GRID = [
    "--workload", "bitcount", "--scale", "0.1", "--generations", "2",
    "--population", "4", "--eval-seeds", "2", "--quiet",
]


class TestKillResume:
    def recorded(self, store):
        if not os.path.exists(store):
            return 0
        conn = sqlite3.connect(store)
        try:
            return int(
                conn.execute("SELECT COUNT(*) FROM run_records").fetchone()[0]
            )
        except sqlite3.OperationalError:  # schema not created yet
            return 0
        finally:
            conn.close()

    def test_sigkill_resume_front_is_byte_identical(self, tmp_path):
        ref_json = str(tmp_path / "ref.json")
        run_cli("explore", *EXPLORE_GRID, "--json", ref_json)

        store = str(tmp_path / "store.sqlite")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "explore", *EXPLORE_GRID,
             "--store", store],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if self.recorded(store) >= 1 or process.poll() is not None:
                    break
                time.sleep(0.005)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=30)

        resumed_json = str(tmp_path / "resumed.json")
        run_cli(
            "explore", *EXPLORE_GRID,
            "--store", store, "--resume", "--json", resumed_json,
        )
        with open(ref_json, "rb") as a, open(resumed_json, "rb") as b:
            assert a.read() == b.read()


class TestReport:
    def test_smoke_search_beats_the_paper_default_somewhere(self, tmp_path):
        # The ISSUE acceptance bar: the smoke search's front strictly
        # improves on the paper-default genome on at least one objective.
        result = run_explore(small_explore_spec(population=4))
        assert result.improves_on_default()

    def test_html_report_is_self_contained(self, tmp_path):
        from repro.explore import render_explore_report, write_explore_report

        result = run_explore(small_explore_spec())
        html = render_explore_report(result)
        assert "<svg" in html and "Pareto" in html
        assert "http://" not in html and "https://" not in html
        out = tmp_path / "explore.html"
        write_explore_report(result, str(out))
        assert out.read_text() == html

    def test_json_report_round_trips(self, tmp_path):
        from repro.explore import write_report_json

        result = run_explore(small_explore_spec())
        out = tmp_path / "explore.json"
        write_report_json(result, str(out))
        data = json.loads(out.read_text())
        assert data["explore_key"] == result.key
        assert data["objective_names"] == list(OBJECTIVE_NAMES)
        assert len(data["evaluations"]) == len(result.evaluations)
        assert "workers" not in data["spec"]


class TestDocsChecker:
    def test_checker_passes_on_the_repo_docs(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
