"""No-partial-effect contract of the data ports.

``MainMemoryPort.load``/``store`` raise ``SegmentFull`` and
``UncheckedConflictStall`` as *control-flow* exceptions: the engine
closes the segment (or drains checkers) and re-executes the very same
instruction.  That only works if a raising operation leaves everything
bit-identical to before — registers, pc, instret, memory, tracker state,
and the filling segment's contents.  These tests pin that contract, per
granularity, with both directed triggers and hypothesis-driven op
sequences; plus the ``CheckerReplayPort`` side: a detection raise must
not touch memory or the logged segment.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.system_config import CacheConfig
from repro.isa import ArchState, Executor, ProgramBuilder
from repro.lslog import (
    LogSegment,
    MainMemoryPort,
    RollbackGranularity,
    SegmentFull,
)
from repro.lslog.detection import (
    LoadAddressMismatch,
    LogExhausted,
    StoreMismatch,
)
from repro.lslog.ports import CheckerReplayPort, UncheckedConflictStall
from repro.memory import UncheckedLineTracker

GRANULARITIES = list(RollbackGranularity)
DATA_BASE = 0x1000

#: 1 set x 1 way: any two distinct unchecked lines conflict.
TINY_CACHE = CacheConfig(
    size_bytes=64, associativity=1, hit_latency_cycles=1, mshrs=1
)


def snapshot_world(state, memory, tracker, segment):
    """Every bit of state a raising port operation must leave untouched."""
    return {
        "x": list(state.regs.x),
        "f": list(state.regs.f),
        "flags": state.regs.flags,
        "pc": state.pc,
        "instret": state.instret,
        "halted": state.halted,
        "output": list(state.output),
        "memory": dict(memory.words),
        "timestamps": dict(tracker._timestamp),
        "set_load": list(tracker._set_load),
        "loads": list(segment.loads),
        "store_addrs": list(segment.store_addrs),
        "store_values": list(segment.store_values),
        "store_olds": list(segment.store_olds),
        "lines": list(segment.lines),
        "detection_bytes": segment.detection_bytes,
        "rollback_bytes": segment.rollback_bytes,
        "instruction_count": segment.instruction_count,
    }


def build_mem_program(ops):
    """ldr/str sequence over 16 slots spanning two cache lines."""
    b = ProgramBuilder(name="mem-ops")
    b.movi(1, DATA_BASE)
    for i, (is_store, slot) in enumerate(ops):
        if is_store:
            b.movi(3, 0x1000 + i)
            b.str_(3, 1, 8 * slot)
        else:
            b.ldr(2, 1, 8 * slot)
    b.halt()
    return b.build()


def make_world(granularity, capacity_bytes, cache=TINY_CACHE, seq=1):
    from repro.isa import MemoryImage

    memory = MemoryImage()
    for slot in range(16):
        memory.store(DATA_BASE + 8 * slot, slot + 1)
    tracker = UncheckedLineTracker(cache)
    port = MainMemoryPort(memory, tracker, granularity)
    state = ArchState()
    segment = LogSegment(
        seq=seq,
        granularity=granularity,
        capacity_bytes=capacity_bytes,
        start_state=state.snapshot(),
    )
    port.segment = segment
    return memory, tracker, port, state, segment


def run_until_raise(program, memory, tracker, port, state, segment):
    """Step to completion; on a port raise return (exc, before-snapshot)."""
    executor = Executor(program, state, port)
    while not state.halted:
        before = snapshot_world(state, memory, tracker, segment)
        try:
            executor.step()
        except (SegmentFull, UncheckedConflictStall) as exc:
            return exc, before
    return None, None


class TestMainPortDirected:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_segment_full_is_effect_free(self, granularity):
        # Capacity fits exactly two load entries; the third must raise
        # without touching anything.
        memory, tracker, port, state, segment = make_world(granularity, 32)
        program = build_mem_program([(False, 0), (False, 1), (False, 2)])
        exc, before = run_until_raise(
            program, memory, tracker, port, state, segment
        )
        assert isinstance(exc, SegmentFull)
        assert segment.load_count == 2
        after = snapshot_world(state, memory, tracker, segment)
        assert after == before

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_store_segment_full_is_effect_free(self, granularity):
        # Room for the first store only (LINE: 16+72=88; WORD: 16+8=24;
        # NONE: 16) — the second store raises.
        capacity = {
            RollbackGranularity.LINE: 90,
            RollbackGranularity.WORD: 25,
            RollbackGranularity.NONE: 17,
        }[granularity]
        memory, tracker, port, state, segment = make_world(granularity, capacity)
        program = build_mem_program([(True, 0), (True, 1)])
        exc, before = run_until_raise(
            program, memory, tracker, port, state, segment
        )
        assert isinstance(exc, SegmentFull)
        assert segment.store_count == 1
        after = snapshot_world(state, memory, tracker, segment)
        assert after == before

    @pytest.mark.parametrize(
        "granularity", [RollbackGranularity.WORD, RollbackGranularity.LINE]
    )
    def test_conflict_stall_is_effect_free(self, granularity):
        # Slot 0 and slot 8 live on different lines; with one way per
        # set the second unchecked line conflicts.
        memory, tracker, port, state, segment = make_world(granularity, 4096)
        program = build_mem_program([(True, 0), (True, 8)])
        exc, before = run_until_raise(
            program, memory, tracker, port, state, segment
        )
        assert isinstance(exc, UncheckedConflictStall)
        assert exc.address == DATA_BASE + 8 * 8
        after = snapshot_world(state, memory, tracker, segment)
        assert after == before

    def test_none_granularity_never_conflicts(self):
        # Detection-only stores are not buffered, so the tiny cache
        # cannot stall them.
        memory, tracker, port, state, segment = make_world(
            RollbackGranularity.NONE, 4096
        )
        program = build_mem_program([(True, slot) for slot in range(16)])
        exc, _ = run_until_raise(program, memory, tracker, port, state, segment)
        assert exc is None
        assert state.halted
        assert tracker.unchecked_lines() == 0

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_retry_after_close_succeeds(self, granularity):
        # The engine's contract: after SegmentFull, close + reopen and
        # re-execute the same instruction; it must then succeed and
        # record exactly once.
        from repro.lslog import SegmentCloseReason

        memory, tracker, port, state, segment = make_world(granularity, 32)
        program = build_mem_program([(False, 0), (False, 1), (False, 2)])
        executor = Executor(program, state, port)
        try:
            while not state.halted:
                executor.step()
        except SegmentFull:
            pass
        pc_at_raise = state.pc
        segment.close(state.snapshot(), SegmentCloseReason.LOG_CAPACITY)
        fresh = LogSegment(
            seq=2,
            granularity=granularity,
            capacity_bytes=4096,
            start_state=state.snapshot(),
        )
        port.segment = fresh
        while not state.halted:
            executor.step()
        assert fresh.loads[0] == (DATA_BASE + 16, 3)  # the retried load
        assert state.pc > pc_at_raise
        assert segment.load_count + fresh.load_count == 3


OPS = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=15)),
    min_size=1,
    max_size=24,
)


class TestMainPortProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS, granularity=st.sampled_from(GRANULARITIES))
    def test_tiny_segment_raises_are_effect_free(self, ops, granularity):
        # A 120-byte segment makes SegmentFull routine; the 1x1 cache
        # makes conflicts routine.  Whatever raises first must be
        # invisible.
        memory, tracker, port, state, segment = make_world(granularity, 120)
        program = build_mem_program(ops)
        exc, before = run_until_raise(
            program, memory, tracker, port, state, segment
        )
        if exc is None:
            assert state.halted
            return
        after = snapshot_world(state, memory, tracker, segment)
        assert after == before

    @settings(max_examples=30, deadline=None)
    @given(ops=OPS)
    def test_word_store_log_restores_memory(self, ops):
        # store_olds must hold exactly the values needed to unwind the
        # segment's stores (newest first).
        memory, tracker, port, state, segment = make_world(
            RollbackGranularity.WORD,
            65536,
            cache=CacheConfig(
                size_bytes=4096, associativity=8, hit_latency_cycles=1, mshrs=4
            ),
        )
        pristine = dict(memory.words)
        program = build_mem_program(ops)
        exc, _ = run_until_raise(program, memory, tracker, port, state, segment)
        assert exc is None
        for addr, old in zip(
            reversed(segment.store_addrs), reversed(segment.store_olds)
        ):
            memory.store(addr, old)
        assert dict(memory.words) == pristine


def fill_clean_segment(granularity=RollbackGranularity.LINE):
    memory, tracker, port, state, segment = make_world(granularity, 65536)
    program = build_mem_program(
        [(False, 0), (True, 1), (False, 2), (True, 3)]
    )
    executor = Executor(program, state, port)
    while not state.halted:
        executor.step()
    return memory, segment


class TestCheckerReplayPort:
    def test_clean_replay_consumes_log(self):
        memory, segment = fill_clean_segment()
        replay = CheckerReplayPort(segment)
        for address, value in list(segment.loads):
            assert replay.load(address) == value
        for address, value in zip(
            list(segment.store_addrs), list(segment.store_values)
        ):
            replay.store(address, value)
        assert replay.fully_consumed

    def test_mismatches_leave_segment_and_memory_untouched(self):
        # Detection raises must not edit the logged evidence (the engine
        # rolls back from it) nor main memory (checkers have no memory
        # port, section II-B).  The replay indices do advance before the
        # raise — that is documented behaviour, not state corruption.
        memory, segment = fill_clean_segment()
        words_before = dict(memory.words)
        loads_before = list(segment.loads)
        stores_before = (
            list(segment.store_addrs),
            list(segment.store_values),
            list(segment.store_olds),
            list(segment.lines),
        )

        replay = CheckerReplayPort(segment)
        with pytest.raises(LoadAddressMismatch):
            replay.load(segment.loads[0][0] ^ 8)

        replay = CheckerReplayPort(segment)
        replay.load(segment.loads[0][0])
        replay.load(segment.loads[1][0])
        with pytest.raises(StoreMismatch):
            replay.store(segment.store_addrs[0], segment.store_values[0] ^ 1)

        replay = CheckerReplayPort(segment)
        for address, _ in loads_before:
            replay.load(address)
        with pytest.raises(LogExhausted):
            replay.load(DATA_BASE)

        assert dict(memory.words) == words_before
        assert list(segment.loads) == loads_before
        assert (
            list(segment.store_addrs),
            list(segment.store_values),
            list(segment.store_olds),
            list(segment.lines),
        ) == stores_before
