"""Rollback correctness: restoring memory to any checkpoint boundary."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.isa import ArchState, MemoryImage
from repro.lslog import (
    LINE_ROLLBACK_CYCLES,
    LogSegment,
    MainMemoryPort,
    ROLLBACK_BASE_CYCLES,
    RollbackGranularity,
    WORD_ROLLBACK_CYCLES,
    rollback_cost_cycles,
    rollback_memory,
)
from repro.memory import UncheckedLineTracker


def make_port(granularity, capacity=1 << 20):
    memory = MemoryImage()
    tracker = UncheckedLineTracker(CacheConfig(32 * 1024, 4, 2, mshrs=4))
    port = MainMemoryPort(memory, tracker, granularity)
    port.segment = LogSegment(
        seq=1, granularity=granularity, capacity_bytes=capacity, start_state=ArchState()
    )
    return port


def new_segment(port, seq):
    port.segment = LogSegment(
        seq=seq,
        granularity=port.granularity,
        capacity_bytes=port.segment.capacity_bytes,
        start_state=ArchState(),
    )


class TestWordRollback:
    def test_single_segment_undo(self):
        port = make_port(RollbackGranularity.WORD)
        port.memory.store(0, 100)
        port.store(0, 1)
        port.store(8, 2)
        result = rollback_memory(port.memory, [port.segment])
        assert port.memory.load(0) == 100
        assert port.memory.load(8) == 0
        assert result.entries_restored == 2

    def test_overwrites_in_reverse_order(self):
        port = make_port(RollbackGranularity.WORD)
        port.memory.store(0, 100)
        port.store(0, 1)
        port.store(0, 2)
        port.store(0, 3)
        rollback_memory(port.memory, [port.segment])
        assert port.memory.load(0) == 100

    def test_multi_segment_newest_first(self):
        port = make_port(RollbackGranularity.WORD)
        port.memory.store(0, 100)
        port.store(0, 1)  # segment 1
        first = port.segment
        new_segment(port, 2)
        port.store(0, 2)  # segment 2
        second = port.segment
        rollback_memory(port.memory, [second, first])
        assert port.memory.load(0) == 100

    def test_partial_rollback_to_middle_checkpoint(self):
        port = make_port(RollbackGranularity.WORD)
        port.store(0, 1)  # segment 1
        new_segment(port, 2)
        port.store(0, 2)  # segment 2
        second = port.segment
        rollback_memory(port.memory, [second])  # only the newest
        assert port.memory.load(0) == 1


class TestLineRollback:
    def test_single_segment_line_restore(self):
        port = make_port(RollbackGranularity.LINE)
        port.memory.store(0, 100)
        port.memory.store(8, 200)
        port.store(0, 1)
        port.store(8, 2)
        result = rollback_memory(port.memory, [port.segment])
        assert port.memory.load(0) == 100
        assert port.memory.load(8) == 200
        assert result.entries_restored == 1  # one line, two stores

    def test_multi_segment_ordering(self):
        port = make_port(RollbackGranularity.LINE)
        port.memory.store(0, 100)
        port.store(0, 1)
        first = port.segment
        new_segment(port, 2)
        port.store(0, 2)
        second = port.segment
        rollback_memory(port.memory, [second, first])
        assert port.memory.load(0) == 100

    def test_line_copied_in_only_one_checkpoint(self):
        # Writes to a line only in segment 2: restoring just segment 2
        # recovers the state at segment 1's start too.
        port = make_port(RollbackGranularity.LINE)
        port.memory.store(64, 5)
        first = port.segment  # no stores
        new_segment(port, 2)
        port.store(64, 9)
        second = port.segment
        rollback_memory(port.memory, [second, first])
        assert port.memory.load(64) == 5


class TestCosts:
    def test_word_cost(self):
        port = make_port(RollbackGranularity.WORD)
        for i in range(10):
            port.store(i * 8, i)
        result = rollback_memory(port.memory, [port.segment])
        assert result.cycles == ROLLBACK_BASE_CYCLES + 10 * WORD_ROLLBACK_CYCLES

    def test_line_cost_cheaper_with_locality(self):
        word_port = make_port(RollbackGranularity.WORD)
        line_port = make_port(RollbackGranularity.LINE)
        for port in (word_port, line_port):
            for i in range(64):
                port.store((i % 8) * 8, i)  # 64 stores, one line
        word_cost = rollback_memory(word_port.memory, [word_port.segment]).cycles
        line_cost = rollback_memory(line_port.memory, [line_port.segment]).cycles
        assert line_cost < word_cost / 5

    def test_cost_estimator_matches(self):
        port = make_port(RollbackGranularity.WORD)
        for i in range(7):
            port.store(i * 8, i)
        estimated = rollback_cost_cycles([port.segment])
        actual = rollback_memory(port.memory, [port.segment]).cycles
        assert estimated == actual

    def test_empty_rollback(self):
        memory = MemoryImage()
        result = rollback_memory(memory, [])
        assert result.entries_restored == 0
        assert result.cycles == ROLLBACK_BASE_CYCLES


class TestErrors:
    def test_detection_only_cannot_roll_back(self):
        port = make_port(RollbackGranularity.NONE)
        port.store(0, 1)
        with pytest.raises(ValueError, match="detection-only"):
            rollback_memory(port.memory, [port.segment])

    def test_mixed_granularities_rejected(self):
        word = make_port(RollbackGranularity.WORD).segment
        line = make_port(RollbackGranularity.LINE).segment
        with pytest.raises(ValueError, match="mixed"):
            rollback_memory(MemoryImage(), [word, line])


class TestRollbackProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        granularity=st.sampled_from(
            [RollbackGranularity.WORD, RollbackGranularity.LINE]
        ),
        initial=st.dictionaries(
            st.integers(min_value=0, max_value=31).map(lambda i: i * 8),
            st.integers(min_value=1, max_value=2**63),
            max_size=16,
        ),
        stores=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31).map(lambda i: i * 8),
                st.integers(min_value=0, max_value=2**63),
                st.integers(min_value=0, max_value=3),  # segment boundary marker
            ),
            max_size=60,
        ),
    )
    def test_rollback_restores_exact_initial_memory(
        self, granularity, initial, stores
    ):
        """Any store sequence, any segmentation: rollback of every segment
        restores the initial image exactly."""
        port = make_port(granularity)
        for address, value in initial.items():
            port.memory.store(address, value)
        reference = port.memory.snapshot()

        segments = [port.segment]
        seq = 1
        for address, value, boundary in stores:
            if boundary == 0 and segments[-1].store_count:
                seq += 1
                new_segment(port, seq)
                segments.append(port.segment)
            port.store(address, value)
        rollback_memory(port.memory, list(reversed(segments)))
        assert port.memory == reference
