"""Engine integration: golden equivalence, recovery, stalls, systems."""

import numpy as np
import pytest

from repro.config import table1_config
from repro.core import (
    BaselineSystem,
    DetectionOnlySystem,
    ParaDoxSystem,
    ParaMedicSystem,
)
from repro.faults import (
    FaultInjector,
    FunctionalUnitFaultModel,
    MemoryFaultModel,
    RegisterFaultModel,
    default_injector,
)
from repro.isa import FunctionalUnit
from repro.lslog import SegmentCloseReason
from repro.workloads import (
    WorkloadProfile,
    build_bitcount,
    build_stream,
    build_synthetic,
    golden_run,
)

ALL_SYSTEMS = [BaselineSystem, DetectionOnlySystem, ParaMedicSystem, ParaDoxSystem]
CORRECTING_SYSTEMS = [ParaMedicSystem, ParaDoxSystem]


class TestErrorFreeEquivalence:
    @pytest.mark.parametrize("system_cls", ALL_SYSTEMS)
    def test_bitcount_output_matches_golden(
        self, system_cls, bitcount_small, bitcount_golden
    ):
        result = system_cls().run(bitcount_small)
        assert result.program_output == bitcount_golden.output
        assert result.instructions == bitcount_golden.instructions
        assert result.errors_detected == 0

    @pytest.mark.parametrize("system_cls", ALL_SYSTEMS)
    def test_stream_memory_matches_golden(
        self, system_cls, stream_small, stream_golden
    ):
        engine = system_cls().engine(stream_small)
        engine.run(stream_small.max_instructions)
        assert engine.memory == stream_golden.memory

    def test_protected_systems_slower_than_baseline(self, bitcount_small):
        base = BaselineSystem().run(bitcount_small)
        protected = ParaDoxSystem().run(bitcount_small)
        assert protected.wall_ns >= base.wall_ns

    def test_segments_created(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small)
        assert result.segments > 1
        assert result.mean_checkpoint_length > 0

    def test_baseline_has_no_segments(self, bitcount_small):
        result = BaselineSystem().run(bitcount_small)
        assert result.segments == 0
        assert result.checker_wake_rates == []


class TestCheckerTargetedFaults:
    """The paper's setup: injection into checkers only.  Main execution is
    actually correct, but the system cannot know — detections trigger full
    rollback and re-execution, and the final state must be unchanged."""

    @pytest.mark.parametrize("system_cls", CORRECTING_SYSTEMS)
    @pytest.mark.parametrize("rate", [1e-4, 1e-3])
    def test_output_always_golden(
        self, system_cls, rate, bitcount_small, bitcount_golden
    ):
        config = table1_config().with_error_rate(rate)
        result = system_cls(config=config).run(bitcount_small)
        assert not result.livelocked
        assert result.program_output == bitcount_golden.output

    def test_errors_actually_detected(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        assert result.errors_detected > 0
        assert result.faults_injected > 0

    def test_recovery_events_well_formed(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        result = ParaDoxSystem(config=config).run(bitcount_small)
        for event in result.recoveries:
            assert event.wasted_execution_ns >= 0
            assert event.rollback_ns >= 0
            assert event.segments_rolled_back >= 1
            assert event.detect_ns <= result.wall_ns + 1e-6 or True

    def test_memory_identical_after_recovery(self, stream_small, stream_golden):
        config = table1_config().with_error_rate(5e-4)
        engine = ParaDoxSystem(config=config).engine(stream_small)
        result = engine.run(stream_small.max_instructions)
        assert result.errors_detected > 0
        assert engine.memory == stream_golden.memory

    def test_paradox_shrinks_checkpoints_under_errors(self, bitcount_small):
        clean = ParaDoxSystem().run(bitcount_small)
        noisy = ParaDoxSystem(
            config=table1_config().with_error_rate(2e-3)
        ).run(bitcount_small)
        assert noisy.final_checkpoint_target < clean.final_checkpoint_target

    def test_paramedic_keeps_growing_checkpoints(self, bitcount_small):
        noisy = ParaMedicSystem(
            config=table1_config().with_error_rate(1e-3)
        ).run(bitcount_small)
        # Non-adaptive: the target only ever grows from its initial 1000.
        assert noisy.final_checkpoint_target >= 1000

    def test_paradox_beats_paramedic_at_high_rates(self, bitcount_small):
        config = table1_config().with_error_rate(2e-3)
        pm_engine = ParaMedicSystem(config=config).engine(bitcount_small)
        pm_engine.options.livelock_factor = 16
        pm = pm_engine.run(bitcount_small.max_instructions)
        pd = ParaDoxSystem(config=config).run(bitcount_small)
        pm_per_inst = pm.wall_ns / pm.instructions
        pd_per_inst = pd.wall_ns / pd.instructions
        assert pd_per_inst < pm_per_inst


class TestMainTargetedFaults:
    """Genuine corruption of main-core execution must be repaired."""

    def make_injector(self, rate, seed):
        rng = np.random.default_rng(seed)
        return FaultInjector(
            [
                RegisterFaultModel(rate, rng),
                FunctionalUnitFaultModel(rate, rng, FunctionalUnit.INT_ALU),
            ],
            target="main",
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stream_recovers_bit_exact(self, seed, stream_small, stream_golden):
        engine = ParaDoxSystem().engine(
            stream_small, seed=seed, injector=self.make_injector(1e-3, seed)
        )
        result = engine.run(stream_small.max_instructions)
        assert result.program_output == stream_golden.output
        assert engine.memory == stream_golden.memory

    def test_paramedic_also_recovers(self, stream_small, stream_golden):
        engine = ParaMedicSystem().engine(
            stream_small, seed=7, injector=self.make_injector(1e-3, 7)
        )
        result = engine.run(stream_small.max_instructions)
        assert engine.memory == stream_golden.memory
        del result

    def test_log_fault_model_on_checker(self, bitcount_small, bitcount_golden):
        rng = np.random.default_rng(3)
        injector = FaultInjector(
            [MemoryFaultModel(5e-3, rng, target="load")], target="checker"
        )
        result = ParaDoxSystem().run(bitcount_small, injector=injector)
        assert result.program_output == bitcount_golden.output


class TestStallAccounting:
    def test_checkpoint_stalls_accumulate(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small)
        assert result.stalls.checkpoint_ns > 0
        # 16 cycles at 3.2 GHz = 5 ns per checkpoint.
        assert result.stalls.checkpoint_ns == pytest.approx(
            result.segments * 5.0, rel=0.01
        )

    def test_rollback_stall_only_with_errors(self, bitcount_small):
        clean = ParaDoxSystem().run(bitcount_small)
        assert clean.stalls.rollback_ns == 0
        noisy = ParaDoxSystem(
            config=table1_config().with_error_rate(1e-3)
        ).run(bitcount_small)
        assert noisy.stalls.rollback_ns > 0

    def test_close_reasons_recorded(self, stream_small):
        result = ParaDoxSystem().run(stream_small)
        assert SegmentCloseReason.PROGRAM_END in result.close_reasons
        assert sum(result.close_reasons.values()) == result.segments


class TestLogCapacityBehaviour:
    def test_stream_checkpoints_capacity_limited(self):
        """Memory-bound stream fills the 6 KiB log before the 5,000-inst
        target (the paper's observation in section VI-B)."""
        workload = build_stream(elements=256, passes=3)
        result = ParaMedicSystem().run(workload)
        assert result.close_reasons.get(SegmentCloseReason.LOG_CAPACITY, 0) > 0
        assert result.mean_checkpoint_length < 2000

    def test_bitcount_checkpoints_target_limited(self, bitcount_small):
        result = ParaMedicSystem().run(bitcount_small)
        assert result.close_reasons.get(SegmentCloseReason.TARGET_LENGTH, 0) > 0


class TestUncheckedConflicts:
    def make_conflict_workload(self):
        profile = WorkloadProfile(
            name="conflict-heavy",
            alu=2,
            load=1,
            store=4,
            conflict_store_fraction=0.9,
            sequential_fraction=0.1,
            working_set_kib=1024,
            code_blocks=2,
            block_ops=24,
        )
        return build_synthetic(profile, iterations=30, seed=5)

    def test_conflicts_occur_and_resolve(self):
        workload = self.make_conflict_workload()
        golden = golden_run(workload)
        engine = ParaDoxSystem().engine(workload)
        result = engine.run(workload.max_instructions)
        assert engine.memory == golden.memory
        assert (
            result.close_reasons.get(SegmentCloseReason.EVICTION_CONFLICT, 0) > 0
            or result.stalls.conflict_ns > 0
        )

    def test_detection_only_unaffected_by_conflicts(self):
        workload = self.make_conflict_workload()
        result = DetectionOnlySystem().run(workload)
        assert result.stalls.conflict_ns == 0


class TestLivelock:
    def test_paramedic_livelocks_at_extreme_rates(self):
        workload = build_bitcount(values=30)
        config = table1_config().with_error_rate(5e-3)
        engine = ParaMedicSystem(config=config).engine(workload)
        engine.options.livelock_factor = 8
        result = engine.run(workload.max_instructions)
        assert result.livelocked

    def test_paradox_survives_same_rate(self):
        workload = build_bitcount(values=30)
        config = table1_config().with_error_rate(5e-3)
        engine = ParaDoxSystem(config=config).engine(workload)
        engine.options.livelock_factor = 8
        result = engine.run(workload.max_instructions)
        assert not result.livelocked


class TestDeterminism:
    def test_same_seed_same_result(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        a = ParaDoxSystem(config=config).run(bitcount_small, seed=42)
        b = ParaDoxSystem(config=config).run(bitcount_small, seed=42)
        assert a.wall_ns == b.wall_ns
        assert a.errors_detected == b.errors_detected
        assert a.faults_injected == b.faults_injected

    def test_different_seed_different_faults(self, bitcount_small):
        config = table1_config().with_error_rate(1e-3)
        a = ParaDoxSystem(config=config).run(bitcount_small, seed=1)
        b = ParaDoxSystem(config=config).run(bitcount_small, seed=2)
        assert (
            a.faults_injected != b.faults_injected or a.wall_ns != b.wall_ns
        )


class TestFastPathEquivalence:
    def test_fastpath_matches_full_replay(self, bitcount_small):
        """Skipping provably-clean segments must not change any result."""
        config = table1_config().with_error_rate(5e-4)

        def run(fastpath):
            system = ParaDoxSystem(config=config)
            engine = system.engine(bitcount_small, seed=9)
            engine.options.fastpath = fastpath
            return engine.run(bitcount_small.max_instructions)

        fast = run(True)
        slow = run(False)
        assert fast.errors_detected == slow.errors_detected
        assert fast.faults_injected == slow.faults_injected
        assert fast.wall_ns == pytest.approx(slow.wall_ns)
        assert fast.program_output == slow.program_output


class TestSchedulingIntegration:
    def test_paradox_concentrates_checkers(self, bitcount_small):
        pd = ParaDoxSystem().run(bitcount_small)
        pm = ParaMedicSystem().run(bitcount_small)
        pd_used = sum(1 for rate in pd.checker_wake_rates if rate > 0)
        pm_used = sum(1 for rate in pm.checker_wake_rates if rate > 0)
        assert pd_used <= pm_used
        # Round-robin touches a new core per segment until it wraps.  The
        # final segment's check starts at the run end, so its core shows
        # no in-run wake time (rates are clamped to the run window).
        assert min(16, pm.segments) - 1 <= pm_used <= min(16, pm.segments)

    def test_wake_rates_bounded(self, bitcount_small):
        result = ParaDoxSystem().run(bitcount_small)
        assert all(0.0 <= rate <= 1.0 for rate in result.checker_wake_rates)
        assert len(result.checker_wake_rates) == 16


class TestDvsIntegration:
    def test_dvs_descends_and_recovers(self):
        workload = build_bitcount(values=600)
        result = ParaDoxSystem(dvs=True).run(workload)
        assert result.mean_voltage < 1.1
        assert len(result.voltage_trace) > 10
        # Voltage is sampled at every checkpoint boundary.
        times = [t for t, _ in result.voltage_trace]
        assert times == sorted(times)

    def test_dvs_output_still_golden(self):
        workload = build_bitcount(values=600)
        golden = golden_run(workload)
        result = ParaDoxSystem(dvs=True).run(workload)
        assert result.program_output == golden.output
