"""Multi-main-core shared checker pool: invariants, determinism, fairness."""

import json

import pytest

from repro.core import ParaDoxSystem, run_multicore
from repro.core.multicore import CoreSpec, MulticoreEngine
from repro.core.systems import BaselineSystem
from repro.resilience import CampaignSpec, run_campaign
from repro.scheduling import POOL_POLICIES, PoolPolicy, SharedCheckerPool
from repro.stats.fairness import FairnessReport, gini, shares
from repro.store import run_key
from repro.store.runkey import canonical_cell
from repro.workloads import build_bitcount, build_crc32


def small_mix(seed=7):
    return [build_bitcount(values=48, seed=seed), build_crc32(length_words=24, seed=seed)]


def run_mix(policy, pool_size=4, seed=11, tracing=False):
    return run_multicore(
        small_mix(), policy=policy, pool_size=pool_size, seed=seed, tracing=tracing
    )


class TestSharedPoolInvariants:
    @pytest.mark.parametrize("policy", list(PoolPolicy))
    def test_no_two_mains_overlap_on_one_checker(self, policy):
        specs = [CoreSpec(workload=w) for w in small_mix()]
        harness = MulticoreEngine(specs, policy=policy, pool_size=2, seed=3)
        harness.run()
        by_core = {}
        for record in harness.pool.dispatches:
            by_core.setdefault(record.core_id, []).append(record)
        assert harness.pool.dispatches, "the mix must actually dispatch"
        for records in by_core.values():
            records.sort(key=lambda r: (r.start_ns, r.end_ns))
            for earlier, later in zip(records, records[1:]):
                assert earlier.end_ns <= later.start_ns + 1e-9

    def test_static_partition_never_crosses_the_fence(self):
        specs = [CoreSpec(workload=w) for w in small_mix()]
        harness = MulticoreEngine(
            specs, policy=PoolPolicy.STATIC, pool_size=4, seed=3
        )
        harness.run()
        for main_id in range(len(specs)):
            allowed = set(harness.pool._candidates[main_id])
            used = {
                r.core_id for r in harness.pool.dispatches if r.main_id == main_id
            }
            assert used <= allowed
            assert len(allowed) == 2  # 4 checkers split two ways

    def test_reservation_keeps_a_private_stripe(self):
        pool = SharedCheckerPool(2, 8, policy=PoolPolicy.RESERVATION)
        assert pool.reserved_per_main() == 2
        stripes = [
            set(pool._candidates[m][: pool.reserved_per_main()]) for m in range(2)
        ]
        assert stripes[0].isdisjoint(stripes[1])

    def test_boot_offset_rotates_every_policy(self):
        for policy in PoolPolicy:
            pool = SharedCheckerPool(2, 6, policy=policy, boot_offset=4)
            flat = [c for m in range(2) for c in pool._candidates[m]]
            assert set(flat) <= set(range(6))
            # Logical ID 0 is physical core 4 after rotation.
            assert pool._candidates[0][0] == 4

    def test_undersized_pool_rejected(self):
        with pytest.raises(ValueError):
            SharedCheckerPool(4, 2)

    def test_non_checking_system_rejected(self):
        specs = [CoreSpec(workload=w, system=BaselineSystem()) for w in small_mix()]
        with pytest.raises(ValueError):
            MulticoreEngine(specs, pool_size=4, seed=1)


class TestFairnessMetrics:
    def test_shares_sum_to_one(self):
        result = run_mix(PoolPolicy.WORK_STEALING)
        assert sum(result.fairness.dispatch_share) == pytest.approx(1.0)
        assert sum(result.fairness.busy_share) == pytest.approx(1.0)

    def test_gini_bounds_and_edge_cases(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0)
        # All waiting concentrated on one of N mains approaches (N-1)/N.
        assert gini([10.0, 0.0]) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            gini([-1.0])

    def test_shares_of_nothing_stay_zero(self):
        assert shares([0.0, 0.0]) == [0.0, 0.0]

    def test_report_round_trips(self):
        result = run_mix(PoolPolicy.RESERVATION)
        data = result.fairness.to_dict()
        again = FairnessReport.from_dict(data)
        assert again.to_dict() == data


class TestDeterminism:
    @pytest.mark.parametrize("policy", list(PoolPolicy))
    def test_bit_identical_across_repeats(self, policy):
        first = run_mix(policy, pool_size=2)
        second = run_mix(policy, pool_size=2)
        assert first.to_dict() == second.to_dict()

    def test_contention_shows_up_as_checker_wait(self):
        # A pool of one checker per main under static split is the
        # single-core case; the shared timeline only diverges once the
        # mains actually compete for the same silicon.
        contended = run_mix(PoolPolicy.WORK_STEALING, pool_size=2)
        roomy = run_mix(PoolPolicy.WORK_STEALING, pool_size=16)
        assert sum(contended.fairness.wait_ns) >= sum(roomy.fairness.wait_ns)

    def test_every_core_completes(self):
        result = run_mix(PoolPolicy.WORK_STEALING)
        assert [r.outcome.value for r in result.results] == ["completed"] * 2


class TestTelemetry:
    def test_multicore_events_emitted(self):
        result = run_mix(PoolPolicy.WORK_STEALING, tracing=True)
        assert result.trace
        assert all(event["src"] == "multicore" for event in result.trace)
        kinds = {event["kind"] for event in result.trace}
        assert {"core_done", "dispatch_share", "busy_share", "wait_ns", "wait_gini"} <= kinds
        # Events are JSONL-ready.
        json.dumps(result.trace)


class TestRunKeyStability:
    BASE = {
        "workload": "bitcount",
        "scale": 0.2,
        "seed": 1,
        "rate": 1e-4,
        "model": "transient",
        "dvs": True,
        "initial_margin": 0.05,
        "chip_seed": 0,
        "voltage": None,
        "tracing": False,
        "hook": None,
    }

    def test_single_core_cells_keep_their_keys(self):
        """main_cores=1 must hash exactly like a pre-multicore payload."""
        implicit = run_key(self.BASE)
        explicit = run_key({**self.BASE, "main_cores": 1})
        assert implicit == explicit
        assert "main_cores" not in canonical_cell(self.BASE)

    def test_multicore_cells_fork_the_key(self):
        multi = {**self.BASE, "main_cores": 2, "pool_policy": "static"}
        assert run_key(multi) != run_key(self.BASE)
        assert run_key(multi) != run_key({**multi, "pool_policy": "steal"})
        cell = canonical_cell(multi)
        assert cell["main_cores"] == 2 and cell["pool_policy"] == "static"


def multicore_spec(workers, policy="steal"):
    return CampaignSpec(
        seeds=1,
        scale=0.2,
        rates=(1e-4,),
        models=("transient",),
        timeout_s=120.0,
        workers=workers,
        main_cores=2,
        pool_policy=policy,
    )


class TestMulticoreCampaign:
    @pytest.mark.parametrize("policy", sorted(POOL_POLICIES))
    def test_campaign_runs_every_policy(self, policy):
        report = run_campaign(multicore_spec(workers=1, policy=policy))
        assert len(report.records) == 1
        record = report.records[0]
        assert record.run_class.value != "crash", record.detail
        assert record.fairness is not None
        assert sum(record.fairness["dispatch_share"]) == pytest.approx(1.0)
        assert len(record.fairness["wait_ns"]) == 2

    def test_bit_identical_at_any_workers_width(self):
        def rows(workers):
            report = run_campaign(multicore_spec(workers))
            return [
                (
                    r.run_id,
                    r.run_class,
                    r.outcome,
                    r.recoveries,
                    r.faults_injected,
                    r.instructions,
                    r.fairness,
                )
                for r in report.records
            ]

        assert rows(1) == rows(2)

    def test_record_round_trips_fairness(self):
        from repro.resilience.campaign import RunRecord

        report = run_campaign(multicore_spec(workers=1))
        record = report.records[0]
        again = RunRecord.from_dict(record.to_dict())
        assert again.fairness == record.fairness
        # Single-core records keep their golden dict shape.
        single = run_campaign(
            CampaignSpec(
                seeds=1, scale=0.2, rates=(1e-4,), models=("transient",), workers=1
            )
        ).records[0]
        assert "fairness" not in single.to_dict()

    def test_spec_dict_omits_multicore_fields_when_single(self):
        single = CampaignSpec(seeds=1, rates=(1e-4,), models=("transient",))
        assert "main_cores" not in single.to_dict()
        multi = multicore_spec(workers=1)
        assert multi.to_dict()["main_cores"] == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            multicore_spec(workers=1, policy="anarchy").expand()


class TestDiffcheckPerCore:
    def test_diffcheck_clean_for_each_mix_member(self):
        """Each main core replays its own program; the differential
        oracle must stay clean for every workload of the mix."""
        from repro.cli import main

        for name in ("bitcount", "crc32"):
            assert main(["diffcheck", name, "--scale", "0.2"]) == 0


class TestCliMulticore:
    def test_run_multicore_summary(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run", "bitcount,crc32", "--main-cores", "2",
                "--pool-policy", "static", "--scale", "0.2", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy=static" in out
        assert "main0" in out and "main1" in out

    def test_timeline_rejected_multicore(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "bitcount", "--main-cores", "2", "--timeline"])
