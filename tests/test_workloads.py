"""Workload correctness against independent references."""

import numpy as np
import pytest

from repro.isa import bits_to_float
from repro.workloads import (
    SPEC_ORDER,
    SPEC_PROFILES,
    WorkloadProfile,
    build_bitcount,
    build_spec_workload,
    build_stream,
    build_synthetic,
    golden_run,
)
from repro.workloads.bitcount import DATA_BASE, RESULT_BASE
from repro.workloads.stream import A_BASE, B_BASE, C_BASE, expected_stream


class TestBitcount:
    def test_all_three_methods_agree(self):
        workload = build_bitcount(values=20, seed=3)
        golden = golden_run(workload)
        totals = golden.memory.read_words(RESULT_BASE, 3)
        assert totals[0] == totals[1] == totals[2]

    def test_total_matches_python_popcount(self):
        workload = build_bitcount(values=20, seed=3)
        golden = golden_run(workload)
        expected = sum(
            bin(value).count("1")
            for address, value in workload.initial_words.items()
            if address >= DATA_BASE
        )
        assert golden.memory.load(RESULT_BASE) == expected

    def test_output_prints_cross_check(self):
        workload = build_bitcount(values=8, seed=1)
        golden = golden_run(workload)
        assert len(golden.output) == 1
        total = golden.memory.load(RESULT_BASE)
        assert golden.output[0][1] == str(3 * total)

    def test_terminates_within_budget(self):
        workload = build_bitcount(values=30)
        golden = golden_run(workload)
        assert golden.state.halted
        assert golden.instructions < workload.max_instructions

    def test_deterministic(self):
        a = golden_run(build_bitcount(values=10, seed=5))
        b = golden_run(build_bitcount(values=10, seed=5))
        assert a.memory == b.memory
        assert a.instructions == b.instructions

    def test_category(self):
        assert build_bitcount(values=4).category == "compute"


class TestStream:
    def test_matches_numpy_reference(self):
        elements, passes, seed = 32, 2, 9
        workload = build_stream(elements=elements, passes=passes, seed=seed)
        golden = golden_run(workload)
        assert golden.state.halted
        expected_a, expected_b, expected_c = expected_stream(elements, passes, seed)
        a = golden.memory.read_floats(A_BASE, elements)
        b = golden.memory.read_floats(B_BASE, elements)
        c = golden.memory.read_floats(C_BASE, elements)
        assert np.allclose(a, expected_a)
        assert np.allclose(b, expected_b)
        assert np.allclose(c, expected_c)

    def test_prints_a0(self):
        workload = build_stream(elements=16, passes=1, seed=2)
        golden = golden_run(workload)
        expected_a, _, _ = expected_stream(16, 1, 2)
        assert golden.output[0][1] == repr(
            bits_to_float(golden.memory.load(A_BASE))
        )
        assert float(golden.output[0][1]) == pytest.approx(expected_a[0])

    def test_memory_bound_mix(self):
        """STREAM's hot loops must be memory-op heavy."""
        workload = build_stream(elements=32)
        memory_ops = sum(
            1 for instr in workload.program.instructions if instr.is_memory
        )
        # Static count includes the prologue; the loop bodies are ~30% memory.
        assert memory_ops / len(workload.program.instructions) > 0.15

    def test_category(self):
        assert build_stream(elements=8).category == "memory"


class TestSyntheticGenerator:
    def test_deterministic_program(self):
        profile = SPEC_PROFILES["bzip2"]
        a = build_synthetic(profile, iterations=3, seed=7)
        b = build_synthetic(profile, iterations=3, seed=7)
        assert a.program.instructions == b.program.instructions
        assert a.initial_words == b.initial_words

    def test_different_seeds_differ(self):
        profile = SPEC_PROFILES["bzip2"]
        a = build_synthetic(profile, iterations=3, seed=7)
        b = build_synthetic(profile, iterations=3, seed=8)
        assert a.program.instructions != b.program.instructions

    def test_runs_to_halt_within_budget(self):
        for name in ("bzip2", "mcf", "lbm"):
            workload = build_spec_workload(name, iterations=2, seed=1)
            golden = golden_run(workload)
            assert golden.state.halted, name
            assert golden.instructions < workload.max_instructions, name

    def test_power_of_two_working_set_required(self):
        profile = WorkloadProfile(name="bad", working_set_kib=100)
        with pytest.raises(ValueError):
            build_synthetic(profile)

    def test_code_footprint_scales_with_blocks(self):
        small = build_synthetic(
            WorkloadProfile(name="s", code_blocks=2, block_ops=16), iterations=1
        )
        large = build_synthetic(
            WorkloadProfile(name="l", code_blocks=24, block_ops=44), iterations=1
        )
        assert large.program.text_bytes > small.program.text_bytes * 5

    def test_fp_profile_emits_fp_ops(self):
        workload = build_spec_workload("lbm", iterations=1)
        from repro.isa import FunctionalUnit

        units = {instr.unit for instr in workload.program.instructions}
        assert FunctionalUnit.FP_ALU in units

    def test_output_printed(self):
        workload = build_spec_workload("gcc", iterations=2)
        golden = golden_run(workload)
        assert len(golden.output) == 1


class TestSpecSuite:
    def test_order_matches_figure(self):
        assert list(SPEC_PROFILES) == SPEC_ORDER
        assert len(SPEC_ORDER) == 19

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_spec_workload("specjbb")

    def test_icache_bound_workloads_have_big_text(self):
        """The paper's checker-I-cache-miss workloads must exceed the 8 KiB
        L0; the friendly ones must fit."""
        for name in ("gobmk", "povray", "h264ref", "omnetpp", "xalancbmk"):
            workload = build_spec_workload(name, iterations=1)
            assert workload.program.text_bytes > 8 * 1024, name
        for name in ("mcf", "lbm", "bzip2"):
            workload = build_spec_workload(name, iterations=1)
            assert workload.program.text_bytes < 8 * 1024, name

    def test_conflict_workloads_flagged(self):
        assert SPEC_PROFILES["astar"].conflict_store_fraction > 0
        assert SPEC_PROFILES["bwaves"].conflict_store_fraction > 0
        assert SPEC_PROFILES["sjeng"].conflict_store_fraction > 0

    def test_every_proxy_halts(self):
        for name in SPEC_ORDER:
            workload = build_spec_workload(name, iterations=1, seed=2)
            golden = golden_run(workload)
            assert golden.state.halted, name


class TestWorkloadInfrastructure:
    def test_create_memory_fresh_per_call(self, bitcount_small):
        a = bitcount_small.create_memory()
        b = bitcount_small.create_memory()
        a.store(0, 123)
        assert b.load(0) == 0

    def test_golden_run_does_not_consume_workload(self, bitcount_small):
        first = golden_run(bitcount_small)
        second = golden_run(bitcount_small)
        assert first.memory == second.memory
