"""Program builder: labels, resolution, concatenation."""

import pytest

from repro.isa import ArchState, Executor, MemoryImage, Opcode, ProgramBuilder, concatenate


class TestBuilder:
    def test_forward_labels_resolve_at_build(self):
        b = ProgramBuilder()
        b.b("later").nop().label("later").halt()
        program = b.build()
        assert program[0].target == 2

    def test_undefined_label_raises_at_build(self):
        b = ProgramBuilder()
        b.b("missing")
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_fresh_labels_unique(self):
        b = ProgramBuilder()
        names = {b.fresh_label() for _ in range(100)}
        assert len(names) == 100

    def test_here_tracks_position(self):
        b = ProgramBuilder()
        assert b.here == 0
        b.nop().nop()
        assert b.here == 2

    def test_chaining_returns_builder(self):
        b = ProgramBuilder()
        result = b.movi(1, 5).addi(1, 1, 1).halt()
        assert result is b
        assert len(b.build()) == 3

    def test_call_ret_roundtrip(self):
        b = ProgramBuilder()
        b.call("f").halt().label("f").movi(1, 9).ret()
        program = b.build()
        state = ArchState()
        Executor(program, state, MemoryImage()).run(100)
        assert state.regs.read_x(1) == 9
        assert state.halted

    def test_text_bytes(self):
        b = ProgramBuilder()
        b.nop().nop().halt()
        assert b.build().text_bytes == 12

    def test_branch_without_target_rejected(self):
        b = ProgramBuilder()
        b.op(Opcode.B)  # neither label nor target
        with pytest.raises(ValueError, match="branch without target"):
            b.build()


class TestConcatenate:
    def test_offsets_targets(self):
        a = ProgramBuilder("a")
        a.label("top").nop().b("top")
        first = a.build()
        b = ProgramBuilder("b")
        b.label("top").halt()
        second = b.build()
        joined = concatenate("joined", [first, second])
        assert joined[1].target == 0
        assert joined.labels["a.top"] == 0
        assert joined.labels["b.top"] == 2

    def test_program_indexing(self):
        b = ProgramBuilder()
        b.movi(1, 1).halt()
        program = b.build()
        assert program[0].opcode is Opcode.MOVI
        assert len(program) == 2
        assert program.address_of(1) == 4
