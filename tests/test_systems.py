"""System factory wiring: each design point gets its published options."""

import pytest

from repro.config import table1_config
from repro.core import (
    BaselineSystem,
    DetectionOnlySystem,
    ParaDoxSystem,
    ParaMedicSystem,
)
from repro.faults import VoltageErrorModel
from repro.lslog import RollbackGranularity
from repro.scheduling import SchedulingPolicy
from repro.workloads import build_bitcount


@pytest.fixture(scope="module")
def workload():
    return build_bitcount(values=8)


class TestOptionWiring:
    def test_baseline_has_no_checking(self, workload):
        engine = BaselineSystem().engine(workload)
        assert engine.options.checking is False
        assert engine.pool is None

    def test_detection_only_options(self, workload):
        engine = DetectionOnlySystem().engine(workload)
        assert engine.options.granularity is RollbackGranularity.NONE
        assert engine.options.scheduling is SchedulingPolicy.ROUND_ROBIN
        assert engine.options.adaptive_checkpoints is False

    def test_paramedic_options(self, workload):
        engine = ParaMedicSystem().engine(workload)
        assert engine.options.granularity is RollbackGranularity.WORD
        assert engine.options.scheduling is SchedulingPolicy.ROUND_ROBIN
        assert engine.options.adaptive_checkpoints is False
        assert engine.options.dvs is False

    def test_paradox_options(self, workload):
        engine = ParaDoxSystem().engine(workload)
        assert engine.options.granularity is RollbackGranularity.LINE
        assert engine.options.scheduling is SchedulingPolicy.LOWEST_FREE_ID
        assert engine.options.adaptive_checkpoints is True

    def test_paradox_dvs_gets_voltage_model(self, workload):
        engine = ParaDoxSystem(dvs=True).engine(workload)
        assert engine.options.dvs is True
        assert engine.options.voltage_model is not None
        assert engine.dvfs is not None
        assert engine.injector is not None

    def test_paradox_custom_voltage_model(self, workload):
        model = VoltageErrorModel(nominal_voltage=1.0, nominal_rate=1e-20, scale=0.01)
        engine = ParaDoxSystem(dvs=True, voltage_model=model).engine(workload)
        assert engine.options.voltage_model is model

    def test_constant_decrease_flag_propagates(self, workload):
        engine = ParaDoxSystem(dvs=True, dynamic_voltage_decrease=False).engine(
            workload
        )
        assert engine.dvfs.dynamic_decrease is False


class TestInjectorWiring:
    def test_no_injector_at_zero_rate(self, workload):
        assert ParaDoxSystem().engine(workload).injector is None

    def test_injector_at_configured_rate(self, workload):
        config = table1_config().with_error_rate(1e-4)
        engine = ParaDoxSystem(config=config).engine(workload)
        assert engine.injector is not None
        assert engine.injector.target == "checker"

    def test_baseline_never_injects(self, workload):
        config = table1_config().with_error_rate(1e-2)
        assert BaselineSystem(config=config).engine(workload).injector is None

    def test_detection_only_never_injects(self, workload):
        """Detection-only cannot correct, so it is evaluated error-free."""
        config = table1_config().with_error_rate(1e-2)
        assert DetectionOnlySystem(config=config).engine(workload).injector is None

    def test_explicit_injector_wins(self, workload):
        from repro.faults import default_injector

        injector = default_injector(0.5, seed=1)
        engine = ParaDoxSystem().engine(workload, injector=injector)
        assert engine.injector is injector


class TestNames:
    @pytest.mark.parametrize(
        "cls,name",
        [
            (BaselineSystem, "baseline"),
            (DetectionOnlySystem, "detection-only"),
            (ParaMedicSystem, "paramedic"),
            (ParaDoxSystem, "paradox"),
        ],
    )
    def test_system_names(self, cls, name, workload):
        assert cls().run(workload).system == name
