"""Cache timing model: LRU, sets, prefetching, hierarchy latencies."""

from repro.config import CacheConfig, table1_config
from repro.memory import Cache, MemoryHierarchy, StridePrefetcher


def tiny_cache(size=512, ways=2, line=64):
    return Cache(CacheConfig(size, ways, hit_latency_cycles=1, mshrs=4, line_bytes=line))


class TestCacheBasics:
    def test_first_access_misses(self):
        cache = tiny_cache()
        hit, _ = cache.access(0)
        assert not hit
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = tiny_cache()
        cache.access(0)
        hit, _ = cache.access(8)  # same 64B line
        assert hit

    def test_different_lines_miss(self):
        cache = tiny_cache()
        cache.access(0)
        hit, _ = cache.access(64)
        assert not hit

    def test_lookup_does_not_mutate(self):
        cache = tiny_cache()
        assert not cache.lookup(0)
        assert cache.stats.accesses == 0

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.invalidate(0)
        hit, _ = cache.access(0)
        assert not hit

    def test_flush(self):
        cache = tiny_cache()
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0


class TestLruReplacement:
    def test_lru_victim(self):
        # 512B / 2 ways / 64B lines -> 4 sets; set 0 holds lines 0, 256, 512...
        cache = tiny_cache()
        cache.access(0)
        cache.access(256)
        cache.access(0)  # line 0 becomes MRU
        _, evicted = cache.access(512)  # evicts LRU = 256
        assert evicted == 256
        assert cache.lookup(0)
        assert not cache.lookup(256)

    def test_eviction_counted(self):
        cache = tiny_cache()
        for address in (0, 256, 512):
            cache.access(address)
        assert cache.stats.evictions == 1

    def test_set_isolation(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(64)  # different set
        cache.access(128)
        cache.access(192)
        assert cache.stats.evictions == 0


class TestPrefetcher:
    def test_stride_detection_takes_two_confirmations(self):
        pf = StridePrefetcher(degree=1)
        assert pf.observe(1, 0) == []
        assert pf.observe(1, 64) == []  # stride learnt, not yet confident
        assert pf.observe(1, 128) == [192]  # confident now

    def test_stride_change_resets(self):
        pf = StridePrefetcher()
        pf.observe(1, 0)
        pf.observe(1, 64)
        pf.observe(1, 128)
        assert pf.observe(1, 1000) == []  # broken stride

    def test_zero_stride_ignored(self):
        pf = StridePrefetcher()
        pf.observe(1, 64)
        assert pf.observe(1, 64) == []
        assert pf.observe(1, 64) == []

    def test_prefetch_hits_counted_in_cache(self):
        cache = tiny_cache()
        cache.fill(0, prefetch=True)
        hit, _ = cache.access(0)
        assert hit
        assert cache.stats.prefetch_hits == 1


class TestHierarchy:
    def make(self):
        return MemoryHierarchy(table1_config())

    def test_l1_hit_latency(self):
        hier = self.make()
        hier.data_access(0)  # cold
        result = hier.data_access(0)
        assert result.l1_hit
        assert result.latency_cycles == 2  # Table I L1D hit

    def test_cold_miss_goes_to_dram(self):
        hier = self.make()
        result = hier.data_access(0)
        assert result.dram
        assert result.latency_cycles == 2 + 12 + 176

    def test_l2_hit_after_l1_eviction(self):
        hier = self.make()
        config = hier.l1d.config
        # Touch enough distinct lines in one L1 set to evict, then return.
        stride = config.num_sets * config.line_bytes
        addresses = [i * stride for i in range(config.associativity + 1)]
        for address in addresses:
            hier.data_access(address)
        result = hier.data_access(addresses[0])
        assert not result.l1_hit
        assert result.l2_hit
        assert result.latency_cycles == 2 + 12

    def test_sequential_stream_triggers_prefetch(self):
        hier = self.make()
        pc = 100
        for i in range(8):
            hier.data_access(i * 64, pc=pc)
        assert hier.l2.stats.prefetches > 0

    def test_fetch_path(self):
        hier = self.make()
        cold = hier.fetch_access(0)
        warm = hier.fetch_access(0)
        assert cold > warm
        assert warm == 1  # Table I L1I hit

    def test_reset_stats(self):
        hier = self.make()
        hier.data_access(0)
        hier.reset_stats()
        assert hier.l1d.stats.accesses == 0
        assert hier.dram_accesses == 0

    def test_dram_access_counted(self):
        hier = self.make()
        hier.data_access(0)
        assert hier.dram_accesses == 1
