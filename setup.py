"""Legacy setup shim.

Allows ``python setup.py develop`` on minimal offline environments where
``pip install -e .`` is unavailable (no ``wheel`` package).  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
